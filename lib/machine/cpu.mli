(** The CPU: a fetch/decode/execute interpreter over a linked {!Program},
    with cycle accounting from {!Cost_model} and every data access
    translated through the segmentation/paging {!Seghw.Mmu}.

    Labels whose name starts with ["__stat_"] are zero-cost dynamic
    counters: executing one bumps a named counter without consuming
    cycles — the harness's measurement channel.

    Three engines implement the same semantics. {!Predecoded} (the
    default) executes the link-time lowered program: pre-resolved branch
    targets, a per-site cycle-cost table, pre-interned stat counters,
    and exception-free control flow. {!Block} additionally executes the
    linker's superblock partition — each maximal straight-line region is
    compiled once into operand-resolved closures and dispatched as a
    unit, with a per-segment TLB fast path — while staying
    fault-precise: a mid-block fault leaves EIP, counters, registers,
    and trace events identical to per-instruction execution.
    {!Reference} is the original interpreter, kept as the oracle for the
    equivalence suite. All three produce bit-identical cycles,
    instruction counts, and machine state. *)

type status =
  | Running
  | Halted                     (** reached HLT *)
  | Faulted of Seghw.Fault.t   (** processor fault, EIP at the fault *)

(** Which interpreter executes the program. *)
type engine =
  | Predecoded  (** the lowered fast path (default) *)
  | Block       (** superblock dispatch over the lowered fast path *)
  | Reference   (** the pre-lowering interpreter — the equivalence oracle *)

type t

exception Out_of_fuel

(** [chain] overrides the process-wide {!set_chaining} default for this
    CPU (meaningful only under {!Block}). *)
val create :
  ?engine:engine -> ?chain:bool -> mmu:Seghw.Mmu.t -> phys:Phys_mem.t ->
  costs:Cost_model.t -> program:Program.t -> unit -> t

(** Install the kernel entry point dispatching `int n` and call-gate far
    calls. *)
val set_kernel :
  t -> (t -> gate:[ `Gate of Seghw.Selector.t | `Int of int ] -> unit) -> unit

(** Register a host routine reachable via [Callext name]. *)
val register_external : t -> string -> (t -> unit) -> unit

(** Charge extra cycles (host externals model their own library cost). *)
val add_cycles : t -> int -> unit

val cycles : t -> int
val insns_executed : t -> int
val status : t -> status
val eip : t -> int
val regs : t -> Registers.t
val mmu : t -> Seghw.Mmu.t
val phys : t -> Phys_mem.t
val program : t -> Program.t
val engine : t -> engine

(** Value of one ["__stat_"] counter (0 if never executed). *)
val stat : t -> string -> int

(** Counters that fired at least once, sorted by name (deterministic for
    harness output). *)
val stats : t -> (string * int) list

(** Read the [n]th 32-bit cdecl argument of a host routine (arg 0 at
    [ESP]). *)
val arg_int : t -> int -> int

(** Read a double argument starting at word [n]. *)
val arg_float : t -> int -> float

val return_int : t -> int -> unit
val return_float : t -> float -> unit

(** Execute one instruction (no-op unless [Running]). *)
val step : t -> unit

(** Run until halt, fault, or fuel exhaustion; returns the final status.
    At most [fuel] instructions execute (default 4e9).
    @raise Out_of_fuel once the budget is exhausted. *)
val run : ?fuel:int -> t -> status

(** Instructions retired by {!run} across every CPU of this OCaml
    process, summed over all domains (the counter is atomic; each [run]
    adds its retire count once, on completion) — the host-throughput
    metric reported by the benchmark harness. No simulated semantics
    depend on it. *)
val total_retired : unit -> int

(** Superblocks compiled by {!Block}-engine CPUs of this process (summed
    over all domains). Compiled closures capture no CPU state — they
    fetch the running machine's registers, MMU, and memory from their
    argument — so each {e program}'s closure set compiles once, lazily,
    on the first run of the first machine executing it, and lands in a
    process-wide shared cache keyed on [Program.uid]. Reported as BENCH
    schema 4's ["blocks_built"]. *)
val blocks_built : unit -> int

(** Instructions covered by those compiled superblocks; divided by
    {!blocks_built} this gives BENCH schema 4's ["avg_block_len"]. *)
val block_insns_compiled : unit -> int

(** Superblocks {e bound} from the shared cache instead of compiled: a
    later machine running an already-compiled program bumps this by its
    block count. [blocks_bound / (blocks_built + blocks_bound)] is the
    shared superblock cache's hit rate; a serve/pool workload re-running
    one program should show {!blocks_built} constant while this grows. *)
val blocks_bound : unit -> int

(** {2 Block chaining}

    Under the {!Block} engine, once a block has dispatched often enough
    the CPU follows its terminator's stable successor — statically for
    Jmp/Call/fall-through, by observed branch bias for Jcc — and lays
    the successor blocks' compiled closures out contiguously, so the
    whole hot region (typically a loop) executes as a single dispatch
    with one deferred instruction/cycle commit per chain exit. Chains
    are a derived cache: enabling or disabling them changes nothing
    observable (state, cycles, traces, faults are bit-identical), only
    host throughput. A fuel straddle, an off-bias branch, or any fault
    mid-chain unwinds to exact per-instruction state. *)

(** Process-wide default for new {!Block} CPUs (on unless told
    otherwise); read once per {!create}, so flipping it cannot race a
    running CPU. *)
val set_chaining : bool -> unit

val chaining_enabled : unit -> bool

(** Whether this CPU was created with chaining on. *)
val chaining : t -> bool

(** Chains currently installed on this CPU (a restored CPU starts at 0
    and re-derives). *)
val chain_count : t -> int

(** Per-site Jcc direction counts with at least one observation:
    [(site, taken, fall_through)] ascending by site. Collected only
    with chaining on; cumulative across runs of this CPU. *)
val branch_bias : t -> (int * int * int) list

(** Chains built / member blocks linked / instructions covered, summed
    across all CPUs and domains of this process — BENCH schema 5's
    ["chains_built"] / ["avg_chain_blocks"] / ["avg_chain_insns"]
    inputs. Host-side accounting only. *)
val chains_built : unit -> int

val chain_blocks_linked : unit -> int
val chain_insns_linked : unit -> int

(** {2 Tracing and profiling}

    Attaching a {!Trace.sink} makes the CPU (and its MMU — the sink is
    forwarded to [Seghw.Mmu.set_trace]) emit typed events: segment
    register loads, limit checks, TLB hits/misses/evictions, and
    exactly one [Fault] event per architectural fault caught by {!run}.
    It also switches {!run} to a traced loop that counts per-site
    retires for the cycle profiler. Tracing never changes simulated
    semantics: cycles, stat counters, registers, and memory are
    bit-identical with and without a sink (pinned by the oracle suite
    in [test/test_predecode.ml]). *)

(** Attach or detach the event sink (detached by default). *)
val set_sink : t -> Trace.sink option -> unit

val sink : t -> Trace.sink option

(** Per-function flat profile of a traced run: [(symbol, insns,
    cycles)] sorted by cycles descending. Symbols are function labels
    (anything but ["__stat_"] counters and [".L"] locals); cycles are
    exact ([retires x tabulated site cost]), not sampled. Empty unless
    a sink was attached before running. *)
val profile : t -> (string * int * int) list

(** Fold {!profile} into the attached sink's attribution table (once
    per finished run — the underlying counts are cumulative). *)
val commit_profile : t -> unit

(** {2 Snapshot support}

    The CPU state a checkpoint must carry: everything mutable that is
    not rederivable from the (immutable) program. Registers, the MMU,
    and physical memory are serialized by their own modules; the
    superblock closure cache and the per-segment fast-path arrays are
    derived state, reset/revalidated after an {!import_state}. *)
type persisted = {
  p_eip : int;
  p_zf : bool;
  p_sf : bool;
  p_cf : bool;
  p_ovf : bool;
  p_cycles : int;
  p_insns_executed : int;
  p_status : status;
  p_stats : (string * int) list;
      (** every ["__stat_"] counter that fired, sorted by name *)
  p_prof_hits : (int * int) list;
      (** (site, retires) for nonzero sites, ascending — empty unless
          the run was traced *)
}

val export_state : t -> persisted

(** Overwrite this CPU's mutable execution state with [persisted].
    Counters not named in [p_stats] are zeroed; the per-segment memory
    fast path is invalidated. The CPU must have been created over the
    same program the state was exported from. *)
val import_state : t -> persisted -> unit
