(* The cycle cost model, calibrated to a 1.1 GHz Pentium III running Red Hat
   Linux 7.2 — the paper's measurement platform.

   Anchor points taken directly from the paper:
     - a segment-register load takes 4 cycles (§3.3);
     - the [bound] instruction takes 7 cycles while its 6-instruction
       software equivalent takes 6 (§2) — i.e. ordinary ALU/branch/load
       instructions retire at ~1 cycle each;
     - the cash_modify_ldt call-gate path costs 253 cycles end-to-end and
       the modify_ldt int-0x80 system call costs 781 (§3.6).

   Everything else uses standard P-III latencies (imul 4, idiv ~24, SSE
   add/mul 3-4, div/sqrt ~30). The absolute numbers do not matter for the
   reproduction; the *ratios* between checked and unchecked code do. *)

type t = {
  alu : int;            (* add/sub/logic/lea/mov reg-reg *)
  mem_access : int;     (* extra cost of a memory operand (L1 hit) *)
  imul : int;
  idiv : int;
  branch : int;         (* jmp / jcc *)
  call : int;
  ret : int;
  push_pop : int;
  seg_load : int;       (* mov to segment register *)
  seg_store : int;      (* mov from segment register *)
  bound : int;          (* the BOUND instruction *)
  fp_alu : int;         (* addsd/subsd/mulsd *)
  fp_div : int;
  fp_sqrt : int;
  fp_mov : int;
  cvt : int;
  call_gate : int;      (* lcall through a call gate, round trip,
                           including the (minimal) kernel work *)
  int_syscall : int;    (* int 0x80 kernel entry/exit incl. register
                           save/restore — the slow modify_ldt path *)
  (* MPX, calibrated from "Intel MPX Explained": bndcl/bndcu issue on
     a dedicated port at ~1 cycle; bndmk is a lea-class computation;
     bndldx/bndstx walk the two-level bound directory/table — two
     dependent memory accesses plus address arithmetic even on a hit
     (the hardware adds more on a directory miss; see Bound_regs). *)
  bndmk : int;
  bndcl : int;
  bndcu : int;
  bndldx : int;         (* bound-table walk, hit *)
  bndstx : int;
  (* Capability backend, per the CHERI cost structure: the per-access
     check is pipelined with the access itself (~1 cycle), making the
     2-word pointer traffic — not the check — the dominant cost. *)
  capmk : int;
  capchk : int;
  capclr : int;
}

let pentium3 = {
  alu = 1;
  mem_access = 1;
  imul = 4;
  idiv = 24;
  branch = 1;
  call = 2;
  ret = 2;
  (* matches the MOV + SUB/ADD pair the 4-segment-register configuration
     substitutes for PUSH/POP, which the paper found performance-neutral *)
  push_pop = 3;
  seg_load = 4;
  seg_store = 1;
  bound = 7;
  fp_alu = 3;
  fp_div = 30;
  fp_sqrt = 30;
  fp_mov = 2;
  cvt = 3;
  call_gate = 253;
  int_syscall = 781;
  bndmk = 1;
  bndcl = 1;
  bndcu = 1;
  bndldx = 4;  (* directory load + table load + address arithmetic *)
  bndstx = 4;
  capmk = 1;
  capchk = 1;
  capclr = 1;
}

let has_mem_operand (o : Insn.operand) =
  match o with Insn.Mem _ -> true | Insn.Reg _ | Insn.Imm _ -> false

let fsrc_mem (s : Insn.fsrc) =
  match s with Insn.Fmem _ -> true | Insn.Freg _ -> false

(* Cycle cost of one instruction. Memory operands add [mem_access]. *)
let cost t (i : Insn.t) =
  let mem o = if has_mem_operand o then t.mem_access else 0 in
  let fmem s = if fsrc_mem s then t.mem_access else 0 in
  match i with
  | Insn.Mov (_, dst, src) -> t.alu + mem dst + mem src
  | Insn.Lea _ -> t.alu
  | Insn.Movsx (_, src, _) | Insn.Movzx (_, src, _) -> t.alu + mem src
  | Insn.Alu (Insn.Imul, dst, src) -> t.imul + mem dst + mem src
  | Insn.Alu (_, dst, src) -> t.alu + mem dst + mem src
  | Insn.Idiv src -> t.idiv + mem src
  | Insn.Neg o | Insn.Inc o | Insn.Dec o -> t.alu + mem o
  | Insn.Cmp (a, b) | Insn.Test (a, b) -> t.alu + mem a + mem b
  | Insn.Setcc _ -> t.alu
  | Insn.Fmov (dst, src) -> t.fp_mov + fmem dst + fmem src
  | Insn.Fload_const _ -> t.fp_mov + t.mem_access
  | Insn.Falu (Insn.Fdiv, _, src) -> t.fp_div + fmem src
  | Insn.Falu (_, _, src) -> t.fp_alu + fmem src
  | Insn.Fcmp (_, src) -> t.fp_alu + fmem src
  | Insn.Fneg _ -> t.fp_alu
  | Insn.Fsqrt (_, src) -> t.fp_sqrt + fmem src
  | Insn.Cvtsi2sd (_, src) -> t.cvt + mem src
  | Insn.Cvtsd2si (_, src) -> t.cvt + fmem src
  | Insn.Jmp _ | Insn.Jcc _ -> t.branch
  | Insn.Call _ -> t.call
  | Insn.Ret -> t.ret
  | Insn.Push o | Insn.Pop o -> t.push_pop + mem o
  | Insn.Mov_to_seg (_, o) -> t.seg_load + mem o
  | Insn.Mov_from_seg (o, _) -> t.seg_store + mem o
  | Insn.Lcall_gate _ -> t.call_gate
  | Insn.Int_syscall _ -> t.int_syscall
  | Insn.Bound (_, _) -> t.bound + t.mem_access
  | Insn.Bndmk (_, _) -> t.bndmk
  | Insn.Bndcl (_, o) -> t.bndcl + mem o
  | Insn.Bndcu (_, o, _) -> t.bndcu + mem o
  | Insn.Bndldx (_, _) -> t.bndldx
  | Insn.Bndstx (_, _) -> t.bndstx
  | Insn.Capmk (_, lo, hi) -> t.capmk + mem lo + mem hi
  | Insn.Capchk (_, _, _, _) -> t.capchk
  | Insn.Capclr (_, _) -> t.capclr
  | Insn.Label _ -> 0
  | Insn.Callext _ -> t.call (* host routine adds its own cycles *)
  | Insn.Halt | Insn.Nop -> 0

(* Pre-compute the cost of every instruction of a code array, so the
   interpreter charges cycles with one array read instead of re-running
   the match above per executed instruction. Conditional branches cost
   [branch] taken or not, so one entry per site suffices. *)
let precompute t code = Array.map (cost t) code
