(* The instruction set: a 32-bit x86 subset sufficient for the three Cash
   code generators.

   Control flow uses symbolic labels (resolved to instruction indices at
   link time by [Program]). Memory operands carry an optional segment
   override; without one the hardware default applies — SS for EBP/ESP-based
   addressing, DS otherwise — exactly the rule the Cash backend manipulates
   when it frees the SS register (§3.7). *)

type width = Byte | Word | Long

let[@inline] width_bytes = function Byte -> 1 | Word -> 2 | Long -> 4

type mem = {
  seg : Seghw.Segreg.name option; (* segment override prefix *)
  base : Registers.reg option;
  index : (Registers.reg * int) option; (* register * scale (1,2,4,8) *)
  disp : int;
}

let mem ?seg ?base ?index ?(disp = 0) () = { seg; base; index; disp }

type operand =
  | Reg of Registers.reg
  | Imm of int
  | Mem of mem

type fsrc =
  | Freg of Registers.freg
  | Fmem of mem  (* a 64-bit double in memory *)

type alu =
  | Add | Sub | And | Or | Xor
  | Imul          (* 32-bit signed multiply, truncating *)
  | Shl | Shr | Sar

type cond =
  | Eq | Ne
  | Lt | Le | Gt | Ge          (* signed *)
  | Below | Below_eq | Above | Above_eq  (* unsigned *)

type falu = Fadd | Fsub | Fmul | Fdiv

type t =
  (* data movement *)
  | Mov of width * operand * operand              (* dst, src *)
  | Lea of Registers.reg * mem
  | Movsx of Registers.reg * operand * width      (* sign-extend load *)
  | Movzx of Registers.reg * operand * width      (* zero-extend load *)
  (* integer ALU: dst := dst op src (dst is Reg or Mem) *)
  | Alu of alu * operand * operand
  | Idiv of operand   (* EAX := EDX:EAX / src (we use EAX only), EDX := rem *)
  | Neg of operand
  | Inc of operand
  | Dec of operand
  | Cmp of operand * operand
  | Test of operand * operand
  | Setcc of cond * Registers.reg  (* reg := 0/1 from flags *)
  (* floating point (scalar double) *)
  | Fmov of fsrc * fsrc            (* dst, src; Fmem dst = store *)
  | Fload_const of Registers.freg * float
      (* movsd .LCn(%rip)-style literal-pool load *)
  | Falu of falu * Registers.freg * fsrc
  | Fcmp of Registers.freg * fsrc  (* sets integer flags like comisd *)
  | Fneg of Registers.freg
  | Fsqrt of Registers.freg * fsrc
  | Cvtsi2sd of Registers.freg * operand
  | Cvtsd2si of Registers.reg * fsrc (* truncating *)
  (* control flow *)
  | Jmp of string
  | Jcc of cond * string
  | Call of string
  | Ret
  | Push of operand
  | Pop of operand
  (* segmentation *)
  | Mov_to_seg of Seghw.Segreg.name * operand    (* movw %r/m16, %sreg *)
  | Mov_from_seg of operand * Seghw.Segreg.name  (* movw %sreg, %r/m16 *)
  | Lcall_gate of Seghw.Selector.t (* far call through a call gate *)
  | Int_syscall of int             (* int 0x80-style kernel entry *)
  | Bound of Registers.reg * mem   (* bound r32, m32&32 *)
  (* MPX-style bounds registers (BND0-BND3, indexed 0-3).
     [Bndmk b, m] makes bounds like BNDMK: lower = the value of [m]'s
     base register (0 without one), upper = the full effective address
     of [m] — one past the object's end, the same convention as BCC's
     bounds records and libc malloc's EDX return. *)
  | Bndmk of int * mem             (* bndmk m, %bndN *)
  | Bndcl of int * operand         (* #BR if value < lower *)
  | Bndcu of int * operand * int   (* #BR if value + size > upper *)
  | Bndldx of int * mem            (* load bounds from the bound table,
                                      keyed by [m]'s linear address *)
  | Bndstx of int * mem            (* store bounds into the bound table *)
  (* Capability backend: a capability word is (table index << 1) | tag.
     [Capmk dst, lo, hi] interns [lo, hi) in the hardware capability
     table and writes the tagged word to [dst]. [Capchk cap, m, size,
     write] faults (#BR) on an untagged capability or an access of
     [size] bytes at [m]'s effective address outside the bounds.
     [Capclr val, cap] clears [cap]'s tag when [val]'s value has escaped
     the bounds (GANDALF-style tag clearing on pointer arithmetic). *)
  | Capmk of Registers.reg * operand * operand   (* dst, lower, upper *)
  | Capchk of Registers.reg * mem * int * bool   (* cap, ea, size, write *)
  | Capclr of Registers.reg * Registers.reg      (* value, cap *)
  (* pseudo *)
  | Label of string
  | Callext of string  (* call into a host-implemented runtime routine *)
  | Halt
  | Nop

(* --- pretty-printing (AT&T-flavoured, for debugging dumps) ------------ *)

let pp_mem ppf m =
  (match m.seg with
   | Some s -> Fmt.pf ppf "%%%s:" (String.lowercase_ascii
                                     (Seghw.Segreg.name_to_string s))
   | None -> ());
  if m.disp <> 0 || (m.base = None && m.index = None) then
    Fmt.pf ppf "%d" m.disp;
  match m.base, m.index with
  | None, None -> ()
  | base, index ->
    Fmt.pf ppf "(";
    (match base with
     | Some r -> Fmt.pf ppf "%%%s" (Registers.reg_name r)
     | None -> ());
    (match index with
     | Some (r, scale) -> Fmt.pf ppf ",%%%s,%d" (Registers.reg_name r) scale
     | None -> ());
    Fmt.pf ppf ")"

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "%%%s" (Registers.reg_name r)
  | Imm i -> Fmt.pf ppf "$%d" i
  | Mem m -> pp_mem ppf m

let pp_fsrc ppf = function
  | Freg r -> Fmt.pf ppf "%%%s" (Registers.freg_name r)
  | Fmem m -> pp_mem ppf m

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Imul -> "imul" | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

let cond_name = function
  | Eq -> "e" | Ne -> "ne" | Lt -> "l" | Le -> "le" | Gt -> "g" | Ge -> "ge"
  | Below -> "b" | Below_eq -> "be" | Above -> "a" | Above_eq -> "ae"

let falu_name = function
  | Fadd -> "addsd" | Fsub -> "subsd" | Fmul -> "mulsd" | Fdiv -> "divsd"

let width_suffix = function Byte -> "b" | Word -> "w" | Long -> "l"

let pp ppf = function
  | Mov (w, dst, src) ->
    Fmt.pf ppf "mov%s %a, %a" (width_suffix w) pp_operand src pp_operand dst
  | Lea (r, m) -> Fmt.pf ppf "leal %a, %%%s" pp_mem m (Registers.reg_name r)
  | Movsx (r, src, w) ->
    Fmt.pf ppf "movs%sl %a, %%%s" (width_suffix w) pp_operand src
      (Registers.reg_name r)
  | Movzx (r, src, w) ->
    Fmt.pf ppf "movz%sl %a, %%%s" (width_suffix w) pp_operand src
      (Registers.reg_name r)
  | Alu (op, dst, src) ->
    Fmt.pf ppf "%sl %a, %a" (alu_name op) pp_operand src pp_operand dst
  | Idiv src -> Fmt.pf ppf "idivl %a" pp_operand src
  | Neg o -> Fmt.pf ppf "negl %a" pp_operand o
  | Inc o -> Fmt.pf ppf "incl %a" pp_operand o
  | Dec o -> Fmt.pf ppf "decl %a" pp_operand o
  | Cmp (a, b) -> Fmt.pf ppf "cmpl %a, %a" pp_operand b pp_operand a
  | Test (a, b) -> Fmt.pf ppf "testl %a, %a" pp_operand b pp_operand a
  | Setcc (c, r) ->
    Fmt.pf ppf "set%s %%%s" (cond_name c) (Registers.reg_name r)
  | Fmov (dst, src) -> Fmt.pf ppf "movsd %a, %a" pp_fsrc src pp_fsrc dst
  | Fload_const (r, f) ->
    Fmt.pf ppf "movsd $%g, %%%s" f (Registers.freg_name r)
  | Falu (op, dst, src) ->
    Fmt.pf ppf "%s %a, %%%s" (falu_name op) pp_fsrc src
      (Registers.freg_name dst)
  | Fcmp (a, b) ->
    Fmt.pf ppf "comisd %a, %%%s" pp_fsrc b (Registers.freg_name a)
  | Fneg r -> Fmt.pf ppf "negsd %%%s" (Registers.freg_name r)
  | Fsqrt (d, s) ->
    Fmt.pf ppf "sqrtsd %a, %%%s" pp_fsrc s (Registers.freg_name d)
  | Cvtsi2sd (d, s) ->
    Fmt.pf ppf "cvtsi2sd %a, %%%s" pp_operand s (Registers.freg_name d)
  | Cvtsd2si (d, s) ->
    Fmt.pf ppf "cvttsd2si %a, %%%s" pp_fsrc s (Registers.reg_name d)
  | Jmp l -> Fmt.pf ppf "jmp %s" l
  | Jcc (c, l) -> Fmt.pf ppf "j%s %s" (cond_name c) l
  | Call l -> Fmt.pf ppf "call %s" l
  | Ret -> Fmt.pf ppf "ret"
  | Push o -> Fmt.pf ppf "pushl %a" pp_operand o
  | Pop o -> Fmt.pf ppf "popl %a" pp_operand o
  | Mov_to_seg (s, o) ->
    Fmt.pf ppf "movw %a, %%%s" pp_operand o
      (String.lowercase_ascii (Seghw.Segreg.name_to_string s))
  | Mov_from_seg (o, s) ->
    Fmt.pf ppf "movw %%%s, %a"
      (String.lowercase_ascii (Seghw.Segreg.name_to_string s)) pp_operand o
  | Lcall_gate sel ->
    Fmt.pf ppf "lcall $0x%x, $0x0" (Seghw.Selector.to_int sel)
  | Int_syscall n -> Fmt.pf ppf "int $0x%x" n
  | Bound (r, m) ->
    Fmt.pf ppf "bound %%%s, %a" (Registers.reg_name r) pp_mem m
  | Bndmk (b, m) -> Fmt.pf ppf "bndmk %a, %%bnd%d" pp_mem m b
  | Bndcl (b, o) -> Fmt.pf ppf "bndcl %a, %%bnd%d" pp_operand o b
  | Bndcu (b, o, size) ->
    Fmt.pf ppf "bndcu %a+%d, %%bnd%d" pp_operand o size b
  | Bndldx (b, m) -> Fmt.pf ppf "bndldx %a, %%bnd%d" pp_mem m b
  | Bndstx (b, m) -> Fmt.pf ppf "bndstx %%bnd%d, %a" b pp_mem m
  | Capmk (r, lo, hi) ->
    Fmt.pf ppf "capmk %a, %a, %%%s" pp_operand lo pp_operand hi
      (Registers.reg_name r)
  | Capchk (c, m, size, write) ->
    Fmt.pf ppf "capchk.%s %%%s, %a, %d" (if write then "w" else "r")
      (Registers.reg_name c) pp_mem m size
  | Capclr (v, c) ->
    Fmt.pf ppf "capclr %%%s, %%%s" (Registers.reg_name v)
      (Registers.reg_name c)
  | Label l -> Fmt.pf ppf "%s:" l
  | Callext name -> Fmt.pf ppf "call @%s" name
  | Halt -> Fmt.pf ppf "hlt"
  | Nop -> Fmt.pf ppf "nop"
