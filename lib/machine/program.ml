(* A linked program: instructions with resolved labels, plus the data-section
   layout the loader must establish.

   Code lives outside simulated memory (the CPU interprets the structured
   instruction array); only its encoded byte size is accounted, via
   [Encode]. Data ranges are mapped and initialised by the simulated OS at
   load time.

   Linking also pre-decodes everything the interpreter would otherwise
   recompute per executed instruction: every Jmp/Jcc/Call target is
   resolved to an instruction index in [targets] (parallel to [code]), the
   entry label to [entry_index], and "__stat_" counter labels are marked in
   [stat_labels] — so the execution engine never consults the label
   hashtable or rescans a label's prefix. *)

type datum = {
  label : string;      (* symbolic name, for debugging *)
  addr : int;          (* linear address *)
  size : int;          (* bytes *)
  init : string option (* initial contents; None = zero-filled *)
}

type t = {
  code : Insn.t array;
  labels : (string, int) Hashtbl.t; (* label -> instruction index *)
  entry : string;
  data : datum list;
  data_bytes : int;   (* total initialised + bss data size *)
  (* pre-decoded at link time: *)
  targets : int array;     (* branch-target index per insn; no_target else *)
  entry_index : int;       (* index of the entry label *)
  stat_labels : bool array;(* true where code.(i) is a "__stat_" label *)
}

exception Link_error of string

let no_target = -1

(* Allocation-free prefix test for "__stat_" counter labels. *)
let is_stat_label l =
  String.length l >= 7
  && String.unsafe_get l 0 = '_'
  && String.unsafe_get l 1 = '_'
  && String.unsafe_get l 2 = 's'
  && String.unsafe_get l 3 = 't'
  && String.unsafe_get l 4 = 'a'
  && String.unsafe_get l 5 = 't'
  && String.unsafe_get l 6 = '_'

(* Build a program from an instruction list: index every [Label], resolve
   all jump/call targets to instruction indices, and locate the entry. *)
let link ?(entry = "main") ?(data = []) insns =
  let code = Array.of_list insns in
  let labels = Hashtbl.create 97 in
  let stat_labels = Array.make (Array.length code) false in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l ->
        if Hashtbl.mem labels l then
          raise (Link_error (Printf.sprintf "duplicate label %S" l));
        Hashtbl.add labels l i;
        if is_stat_label l then stat_labels.(i) <- true
      | _ -> ())
    code;
  let resolve_exn l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> raise (Link_error (Printf.sprintf "undefined label %S" l))
  in
  let targets =
    Array.map
      (fun insn ->
        match insn with
        | Insn.Jmp l | Insn.Jcc (_, l) | Insn.Call l -> resolve_exn l
        | _ -> no_target)
      code
  in
  let entry_index = resolve_exn entry in
  let data_bytes = List.fold_left (fun acc d -> acc + d.size) 0 data in
  { code; labels; entry; data; data_bytes; targets; entry_index; stat_labels }

let resolve t label =
  match Hashtbl.find_opt t.labels label with
  | Some i -> i
  | None -> raise (Link_error (Printf.sprintf "undefined label %S" label))

let code_size t = Encode.code_size t.code
let insn_count t = Array.length t.code

let pp ppf t =
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l -> Fmt.pf ppf "%s:@." l
      | _ -> Fmt.pf ppf "  %4d  %a@." i Insn.pp insn)
    t.code
