(* A linked program: instructions with resolved labels, plus the data-section
   layout the loader must establish.

   Code lives outside simulated memory (the CPU interprets the structured
   instruction array); only its encoded byte size is accounted, via
   [Encode]. Data ranges are mapped and initialised by the simulated OS at
   load time.

   Linking also pre-decodes everything the interpreter would otherwise
   recompute per executed instruction: every Jmp/Jcc/Call target is
   resolved to an instruction index in [targets] (parallel to [code]), the
   entry label to [entry_index], and "__stat_" counter labels are marked in
   [stat_labels] — so the execution engine never consults the label
   hashtable or rescans a label's prefix. *)

type datum = {
  label : string;      (* symbolic name, for debugging *)
  addr : int;          (* linear address *)
  size : int;          (* bytes *)
  init : string option (* initial contents; None = zero-filled *)
}

type t = {
  uid : int;           (* process-unique program identity (see [link]) *)
  code : Insn.t array;
  labels : (string, int) Hashtbl.t; (* label -> instruction index *)
  entry : string;
  data : datum list;
  data_bytes : int;   (* total initialised + bss data size *)
  (* pre-decoded at link time: *)
  targets : int array;     (* branch-target index per insn; no_target else *)
  entry_index : int;       (* index of the entry label *)
  stat_labels : bool array;(* true where code.(i) is a "__stat_" label *)
  (* superblock partition (see [block_terminator] below): *)
  block_starts : int array;(* per block: index of its first instruction *)
  block_lens : int array;  (* per block: instruction count, >= 1 *)
  block_at : int array;    (* insn index -> block id if a block starts
                              there, [no_block] otherwise *)
}

exception Link_error of string

let no_target = -1
let no_block = -1

(* Instructions that must end a superblock. Control transfers and [Halt]
   decide the next EIP (or stop the machine); the segment-state group
   (segreg loads, call gates, kernel entries) can rewrite descriptor
   caches or switch address spaces; [Callext] runs a host routine that
   may charge cycles, map/unmap pages, or invalidate TLB entries. The
   block engine executes everything before the terminator as known
   straight-line code and puts the terminator itself through the generic
   per-instruction path. *)
let block_terminator (i : Insn.t) =
  match i with
  | Insn.Jmp _ | Insn.Jcc _ | Insn.Call _ | Insn.Ret | Insn.Halt
  | Insn.Mov_to_seg _ | Insn.Lcall_gate _ | Insn.Int_syscall _
  | Insn.Callext _ ->
    true
  | _ -> false

(* Partition [code] into maximal single-entry straight-line regions: a
   block starts at index 0, at the entry, at every branch target, and
   right after every terminator; it runs until the next start. Every
   instruction belongs to exactly one block, and no control flow enters
   a block except at its first instruction — a [Ret] to a computed
   address is the one dynamic exception, which the execution engine
   handles by stepping per-instruction until it re-synchronises on a
   block start ([block_at] gives the test). *)
let partition code targets entry_index =
  let n = Array.length code in
  let starts = Array.make n false in
  if n > 0 then begin
    starts.(0) <- true;
    starts.(entry_index) <- true;
    for i = 0 to n - 1 do
      if block_terminator code.(i) && i + 1 < n then starts.(i + 1) <- true;
      let t = targets.(i) in
      if t >= 0 then starts.(t) <- true
    done
  end;
  let nblocks = Array.fold_left (fun a s -> if s then a + 1 else a) 0 starts in
  let block_starts = Array.make nblocks 0 in
  let block_lens = Array.make nblocks 0 in
  let block_at = Array.make n no_block in
  let b = ref (-1) in
  for i = 0 to n - 1 do
    if starts.(i) then begin
      incr b;
      block_starts.(!b) <- i;
      block_at.(i) <- !b
    end;
    block_lens.(!b) <- block_lens.(!b) + 1
  done;
  (block_starts, block_lens, block_at)

(* Allocation-free prefix test for "__stat_" counter labels. *)
let is_stat_label l =
  String.length l >= 7
  && String.unsafe_get l 0 = '_'
  && String.unsafe_get l 1 = '_'
  && String.unsafe_get l 2 = 's'
  && String.unsafe_get l 3 = 't'
  && String.unsafe_get l 4 = 'a'
  && String.unsafe_get l 5 = 't'
  && String.unsafe_get l 6 = '_'

(* Build a program from an instruction list: index every [Label], resolve
   all jump/call targets to instruction indices, and locate the entry.

   Every linked program gets a process-unique [uid], the key under which
   the block engine's process-wide shared superblock cache stores the
   program's compiled closure set: two machines see the same uid exactly
   when they execute the same [link] result (which the compiled-program
   cache arranges for repeated compiles of the same source). The uid is
   identity, not content — it never enters snapshots, whose program
   check digests [(code, data, entry)] instead. *)
let uid_counter = Atomic.make 0

let link ?(entry = "main") ?(data = []) insns =
  let code = Array.of_list insns in
  let labels = Hashtbl.create 97 in
  let stat_labels = Array.make (Array.length code) false in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l ->
        if Hashtbl.mem labels l then
          raise (Link_error (Printf.sprintf "duplicate label %S" l));
        Hashtbl.add labels l i;
        if is_stat_label l then stat_labels.(i) <- true
      | _ -> ())
    code;
  let resolve_exn l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> raise (Link_error (Printf.sprintf "undefined label %S" l))
  in
  let targets =
    Array.map
      (fun insn ->
        match insn with
        | Insn.Jmp l | Insn.Jcc (_, l) | Insn.Call l -> resolve_exn l
        | _ -> no_target)
      code
  in
  let entry_index = resolve_exn entry in
  let data_bytes = List.fold_left (fun acc d -> acc + d.size) 0 data in
  let block_starts, block_lens, block_at = partition code targets entry_index in
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    code;
    labels;
    entry;
    data;
    data_bytes;
    targets;
    entry_index;
    stat_labels;
    block_starts;
    block_lens;
    block_at;
  }

let resolve t label =
  match Hashtbl.find_opt t.labels label with
  | Some i -> i
  | None -> raise (Link_error (Printf.sprintf "undefined label %S" label))

let code_size t = Encode.code_size t.code
let insn_count t = Array.length t.code

let pp ppf t =
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l -> Fmt.pf ppf "%s:@." l
      | _ -> Fmt.pf ppf "  %4d  %a@." i Insn.pp insn)
    t.code
