(* The memory-management unit: Figure 1's full translation pipeline.

   logical address (segment register + 32-bit offset)
     --[segment limit & protection check]--> linear address
     --[TLB / two-level page walk]--------> physical address

   The MMU owns the six segment registers, references the GDT and the
   current process's LDT (the LDTR), and drives paging through a TLB.
   Every data access performed by the CPU goes through [translate]; the
   segment-limit check that Cash exploits is therefore applied to every
   simulated memory reference, exactly as on real hardware. *)

type t = {
  gdt : Descriptor_table.t;
  mutable ldt : Descriptor_table.t; (* the LDTR: current process's LDT *)
  cs : Segreg.t;
  ss : Segreg.t;
  ds : Segreg.t;
  es : Segreg.t;
  fs : Segreg.t;
  gs : Segreg.t;
  paging : Paging.t;
  tlb : Tlb.t;
  bndregs : Bound_regs.t; (* MPX bounds registers + bound table *)
  captab : Captab.t;      (* capability-backend hardware table *)
  mutable limit_checks : int; (* # segment-limit checks performed *)
  mutable trace : Trace.sink option;
      (* event sink; None (the default) keeps every emit site to one
         load-and-branch. Shared with the CPU's flattened translation
         copy, which tests the same field. *)
}

let create ~gdt ~ldt =
  {
    gdt;
    ldt;
    cs = Segreg.create ();
    ss = Segreg.create ();
    ds = Segreg.create ();
    es = Segreg.create ();
    fs = Segreg.create ();
    gs = Segreg.create ();
    paging = Paging.create ();
    tlb = Tlb.create ();
    bndregs = Bound_regs.create ();
    captab = Captab.create ();
    limit_checks = 0;
    trace = None;
  }

let set_trace t sink = t.trace <- sink
let trace t = t.trace

let[@inline] seg t = function
  | Segreg.CS -> t.cs
  | Segreg.SS -> t.ss
  | Segreg.DS -> t.ds
  | Segreg.ES -> t.es
  | Segreg.FS -> t.fs
  | Segreg.GS -> t.gs

let gdt t = t.gdt
let ldt t = t.ldt
let paging t = t.paging
let tlb t = t.tlb
let bndregs t = t.bndregs
let captab t = t.captab

(* Reload the LDTR (simulates an LDT switch: flushes nothing but future
   segment loads resolve against the new table). *)
let set_ldt t ldt = t.ldt <- ldt

let table_for t selector =
  match Selector.table selector with
  | Selector.Gdt -> t.gdt
  | Selector.Ldt -> t.ldt

(* Segment-register load: resolve the selector through the GDT/LDT and fill
   the hidden descriptor cache. A null selector loads an empty cache (legal
   for data registers; #GP for CS/SS inside Segreg.load). *)
let load_segreg t name selector =
  let descriptor =
    if Selector.is_null selector then None
    else Some (Descriptor_table.lookup_exn (table_for t selector)
                 (Selector.index selector))
  in
  Segreg.load (seg t name) ~name ~selector ~descriptor;
  match t.trace with
  | None -> ()
  | Some s ->
    Trace.emit s
      (Trace.Segreg_load
         { reg = Segreg.name_to_string name;
           selector = Selector.to_int selector })

(* Read back the visible selector, as MOV from a segment register does. *)
let read_segreg t name = Segreg.selector (seg t name)

(* Resolve linear -> physical through the TLB, falling back to the walk.
   A TLB hit is a sentinel-tested int, not an option: the common case
   allocates nothing. A write missing over a read-only entry walks (the
   page tables enforce write protection) and the insert upgrades the slot
   in place. *)
let[@inline] linear_to_physical t ~linear ~write =
  let page = linear lsr Paging.page_shift in
  let frame = Tlb.lookup t.tlb ~page ~write in
  if frame >= 0 then begin
    (match t.trace with
     | None -> ()
     | Some s -> Trace.emit s Trace.Tlb_hit);
    (frame lsl Paging.page_shift) lor (linear land 0xFFF)
  end
  else begin
    (* The miss event precedes the walk so a faulting walk still counts
       the miss, matching the Tlb.lookup counter discipline. *)
    (match t.trace with
     | None -> ()
     | Some s ->
       let old = t.tlb.Tlb.tags.(page land t.tlb.Tlb.mask) in
       Trace.emit s
         (Trace.Tlb_miss { page; evicted = old >= 0 && old <> page }));
    let phys = Paging.walk t.paging ~linear ~write in
    Tlb.insert t.tlb ~page ~frame:(phys lsr Paging.page_shift)
      ~writable:write;
    phys
  end

(* Full logical -> physical translation for a [size]-byte access. This is
   the hot path: one segment-limit check plus a TLB lookup. *)
let[@inline] translate t ~seg_name ~offset ~size ~write =
  t.limit_checks <- t.limit_checks + 1;
  let stack = match seg_name with Segreg.SS -> true | _ -> false in
  let sr = seg t seg_name in
  (match t.trace with
   | None -> ()
   | Some s ->
     (* Recompute the check's outcome over the flat mirror so the event
        can be emitted before [Segreg.translate] raises on failure.
        Must mirror Segreg.translate bit for bit — including the 63-bit
        no-wrap [off + size - 1] evaluation at the 4 GiB boundary (see
        the audit note there); test_seghw.ml pins the two together. *)
     let off = offset land 0xFFFFFFFF in
     let ok =
       sr.Segreg.f_valid
       && ((not write) || sr.Segreg.f_writable)
       && size > 0
       && off + size - 1 <= sr.Segreg.f_limit
     in
     Trace.emit s
       (Trace.Limit_check
          { seg = Segreg.name_to_string seg_name; base = sr.Segreg.f_base;
            offset = off; size; write; ok }));
  let linear = Segreg.translate sr ~name:seg_name ~offset ~size ~write ~stack in
  linear_to_physical t ~linear ~write

(* Translate without a segment register: used by the simulated kernel when
   it touches memory directly (flat linear addressing). *)
let translate_linear t ~linear ~write = linear_to_physical t ~linear ~write

(* Demand-map all pages covering [linear, linear+size). *)
let map_range t ~linear ~size ~writable =
  if size > 0 then begin
    let first = linear lsr Paging.page_shift in
    let last = (linear + size - 1) lsr Paging.page_shift in
    for page = first to last do
      ignore (Paging.map_page t.paging ~linear:(page lsl Paging.page_shift)
                ~writable : int)
    done
  end

let limit_checks t = t.limit_checks
