(* Segment descriptors: the 8-byte GDT/LDT entries of the x86 architecture.

   A descriptor carries a 32-bit base, a 20-bit limit, the granularity bit G
   (G = 1 scales the limit by 4096 and ORs in 0xFFF), a descriptor privilege
   level, a present bit, and a type. We model the descriptor types Cash
   needs: expand-up data segments (read-only or read/write), code segments,
   call gates (used for the cash_modify_ldt fast kernel entry), and LDT
   system segments.

   [encode]/[decode] serialise to the real x86 byte layout so that property
   tests can check the round-trip against the architectural format. *)

type seg_type =
  | Data of { writable : bool }
  | Code of { readable : bool }
  | Call_gate of { handler : int; param_count : int }
      (** [handler] stands in for the target code offset; the simulated
          kernel dispatches on it. *)
  | Ldt_system

type t = {
  base : int;        (* 32-bit segment base linear address *)
  limit : int;       (* raw 20-bit limit field *)
  granularity : bool;(* G bit: false = byte units, true = 4 KiB units *)
  dpl : int;         (* descriptor privilege level, 0..3 *)
  present : bool;
  seg_type : seg_type;
}

let max_byte_limit = (1 lsl 20) - 1 (* largest limit expressible with G=0 *)

let check_invariants d =
  if d.base < 0 || d.base > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Descriptor: base 0x%x not 32-bit" d.base);
  if d.limit < 0 || d.limit > max_byte_limit then
    invalid_arg (Printf.sprintf "Descriptor: limit 0x%x not 20-bit" d.limit);
  if d.dpl < 0 || d.dpl > 3 then
    invalid_arg (Printf.sprintf "Descriptor: dpl %d out of range" d.dpl);
  d

let make ~base ~limit ~granularity ~dpl ~present ~seg_type =
  check_invariants { base; limit; granularity; dpl; present; seg_type }

(* Build a data-segment descriptor covering [size_bytes] bytes starting at
   [base], choosing the granularity bit the way Cash does (§3.5): segments
   of at most 1 MiB use byte granularity and are exact; larger segments use
   page granularity, the size is rounded up to a multiple of 4 KiB, and the
   caller is expected to align the *end* of the array with the end of the
   segment so the upper-bound check stays byte-exact. *)
let for_array ~base ~size_bytes ~writable =
  if size_bytes <= 0 then invalid_arg "Descriptor.for_array: size must be > 0";
  if size_bytes <= 1 lsl 20 then
    make ~base ~limit:(size_bytes - 1) ~granularity:false ~dpl:3 ~present:true
      ~seg_type:(Data { writable })
  else begin
    let pages = (size_bytes + 4095) / 4096 in
    if pages - 1 > max_byte_limit then
      invalid_arg "Descriptor.for_array: segment larger than 4 GiB";
    make ~base ~limit:(pages - 1) ~granularity:true ~dpl:3 ~present:true
      ~seg_type:(Data { writable })
  end

(* Effective limit in bytes: the highest valid offset within the segment. *)
let effective_limit d =
  if d.granularity then (d.limit lsl 12) lor 0xFFF else d.limit

(* Size in bytes covered by the segment. *)
let byte_size d = effective_limit d + 1

let is_data d = match d.seg_type with Data _ -> true | _ -> false
let is_code d = match d.seg_type with Code _ -> true | _ -> false
let is_call_gate d = match d.seg_type with Call_gate _ -> true | _ -> false

let is_writable d =
  match d.seg_type with Data { writable } -> writable | _ -> false

(* The segment-limit check the hardware performs on every memory reference:
   an access of [size] bytes at [offset] must lie entirely within
   [0, effective_limit]. Offsets are 32-bit unsigned, so a "negative" offset
   computed by wrapped arithmetic appears as a huge value and fails the
   check — this is how segmentation gives Cash its lower-bound check.
   [offset + size - 1] deliberately does not wrap at 2^32 (OCaml ints are
   63-bit): an access straddling the 4 GiB boundary fails even against a
   flat 4 GiB segment — the always-fault choice the SDM leaves
   implementation-specific; see Segreg.translate for the full audit. *)
let offset_ok d ~offset ~size =
  let offset = offset land 0xFFFFFFFF in
  size > 0 && offset + size - 1 <= effective_limit d

(* --- architectural byte encoding ------------------------------------- *)

let type_bits = function
  | Data { writable } -> (if writable then 0b0011 else 0b0001) lor 0b10000
    (* S=1 (bit 4 of the access byte), accessed bit set *)
  | Code { readable } -> (if readable then 0b1011 else 0b1001) lor 0b10000
  | Call_gate _ -> 0b01100 (* S=0, type 0xC = 32-bit call gate *)
  | Ldt_system -> 0b00010 (* S=0, type 0x2 = LDT *)

(* Encode to the 8-byte descriptor layout. Call gates reuse the base/limit
   fields to carry the handler id and parameter count (their architectural
   layout differs, but the simulated kernel is the only consumer). *)
let encode d =
  let b = Bytes.make 8 '\000' in
  let set i v = Bytes.set b i (Char.chr (v land 0xFF)) in
  (match d.seg_type with
   | Call_gate { handler; param_count } ->
     set 0 (handler land 0xFF);
     set 1 ((handler lsr 8) land 0xFF);
     set 2 (param_count land 0x1F);
     set 5
       (type_bits d.seg_type
        lor (d.dpl lsl 5)
        lor (if d.present then 0x80 else 0))
   | Data _ | Code _ | Ldt_system ->
     set 0 (d.limit land 0xFF);
     set 1 ((d.limit lsr 8) land 0xFF);
     set 2 (d.base land 0xFF);
     set 3 ((d.base lsr 8) land 0xFF);
     set 4 ((d.base lsr 16) land 0xFF);
     set 5
       (type_bits d.seg_type
        lor (d.dpl lsl 5)
        lor (if d.present then 0x80 else 0));
     set 6
       (((d.limit lsr 16) land 0xF)
        lor (if d.granularity then 0x80 else 0)
        lor 0x40 (* D/B = 1: 32-bit segment *));
     set 7 ((d.base lsr 24) land 0xFF));
  Bytes.to_string b

let decode s =
  if String.length s <> 8 then invalid_arg "Descriptor.decode: need 8 bytes";
  let get i = Char.code s.[i] in
  let access = get 5 in
  let present = access land 0x80 <> 0 in
  let dpl = (access lsr 5) land 3 in
  let s_bit = access land 0x10 <> 0 in
  let type_field = access land 0xF in
  if s_bit then begin
    let limit = get 0 lor (get 1 lsl 8) lor ((get 6 land 0xF) lsl 16) in
    let base = get 2 lor (get 3 lsl 8) lor (get 4 lsl 16) lor (get 7 lsl 24) in
    let granularity = get 6 land 0x80 <> 0 in
    let seg_type =
      if type_field land 0x8 <> 0 then
        Code { readable = type_field land 0x2 <> 0 }
      else Data { writable = type_field land 0x2 <> 0 }
    in
    make ~base ~limit ~granularity ~dpl ~present ~seg_type
  end
  else
    match type_field with
    | 0xC ->
      let handler = get 0 lor (get 1 lsl 8) in
      let param_count = get 2 land 0x1F in
      make ~base:0 ~limit:0 ~granularity:false ~dpl ~present
        ~seg_type:(Call_gate { handler; param_count })
    | 0x2 ->
      make ~base:0 ~limit:0 ~granularity:false ~dpl ~present
        ~seg_type:Ldt_system
    | t -> invalid_arg (Printf.sprintf "Descriptor.decode: system type 0x%x" t)

let equal a b = a = b

let pp ppf d =
  let kind =
    match d.seg_type with
    | Data { writable } -> if writable then "data rw" else "data ro"
    | Code { readable } -> if readable then "code r" else "code"
    | Call_gate { handler; _ } -> Printf.sprintf "gate->%d" handler
    | Ldt_system -> "ldt"
  in
  Fmt.pf ppf "desc(base=0x%08x lim=0x%05x G=%b dpl=%d %s%s)" d.base d.limit
    d.granularity d.dpl kind
    (if d.present then "" else " !P")
