(** Segment registers with their hidden descriptor caches.

    Each register has a visible selector and a hidden copy of the
    descriptor taken at load time (§3.1): translation uses only the
    cache, so modifying the LDT does not affect already-loaded registers
    — the property Cash's 3-entry segment-reuse cache relies on.

    Internally the hidden cache is mirrored into flat mutable scalars
    (base / effective limit / writability), refreshed on every {!load},
    so the in-bounds case of {!translate} performs a single compare
    chain with no option match and no descriptor accessor calls. *)

type name = CS | SS | DS | ES | FS | GS

val name_to_string : name -> string
val all_names : name list

(** Exposed concretely so the interpreter's flattened translation fast
    path can run the limit check over the [f_*] scalar mirror with
    direct field loads (cross-module calls are opaque under dune's dev
    profile). All fields are written only by {!load} (and [create]);
    treat them as read-only everywhere else. *)
type t = {
  mutable selector : Selector.t;
  mutable cache : Descriptor.t option;
      (** [None] = loaded with the null selector (or never loaded) *)
  mutable f_valid : bool;     (** flattened mirror of [cache]: *)
  mutable f_base : int;
  mutable f_limit : int;      (** effective limit in bytes *)
  mutable f_writable : bool;
}

val create : unit -> t
val selector : t -> Selector.t
val cached_descriptor : t -> Descriptor.t option

(** Loaded with the null selector (or never loaded)? *)
val is_null : t -> bool

(** [load t ~name ~selector ~descriptor] performs a segment-register
    load. Architectural rules enforced: CS/SS reject the null selector
    with [#GP]; CS requires a code descriptor; SS requires a writable
    one; data registers reject call gates. *)
val load :
  t -> name:name -> selector:Selector.t -> descriptor:Descriptor.t option ->
  unit

(** Restore a serialized register verbatim (selector plus hidden cache),
    bypassing {!load}'s architectural checks — they ran when the
    snapshotted machine performed the original load, and the hidden
    cache may legitimately disagree with the current LDT (the
    stale-selector property Cash's segment-reuse cache relies on).
    Only the snapshot subsystem should call this. *)
val restore_raw :
  t -> selector:Selector.t -> cache:Descriptor.t option -> unit

(** The per-access check of Figure 1's first stage: verify [offset]
    against the cached limit and produce the linear address.
    Raises [#SS] instead of [#GP] when [stack] is set, [#GP] on writes
    through read-only segments, and [#GP] on use of a null register. *)
val translate :
  t -> name:name -> offset:int -> size:int -> write:bool -> stack:bool -> int

val pp : Format.formatter -> t -> unit
