(* MPX-style bounds-register file and two-level bound table.

   Architectural state for the [Backend.Mpx] compiler, modelled on
   "Intel MPX Explained": four bounds registers BND0-BND3, each holding
   a [lower, upper) byte range for one pointer, and a two-level
   in-memory structure — a bound DIRECTORY of 4 KiB granules, each
   pointing at a second-level bound TABLE — that BNDSTX/BNDLDX use to
   spill and reload bounds keyed by the *linear address of the pointer's
   own memory slot*. That keying is what makes spills transparent to the
   compiler: the caller BNDSTXes against the stack slot it pushes an
   argument into, and the callee BNDLDXes against the very same linear
   address through its frame pointer.

   Costs: the constant per-walk cost (directory load + table load) is
   tabulated in [Cost_model]; a BNDSTX that must allocate a second-level
   table first charges [dir_alloc_cycles] extra on top — the analogue of
   the paper's LDT-reload accounting for Cash, and deterministic across
   engines because the table state evolves identically under all of
   them. *)

type bnd = {
  mutable valid : bool;  (* invalid = unbounded, checks always pass *)
  mutable lower : int;
  mutable upper : int;   (* one past the end, BCC's record convention *)
}

type t = {
  regs : bnd array;  (* BND0-BND3 *)
  directory : (int, (int, int * int) Hashtbl.t) Hashtbl.t;
      (* granule (linear addr / 4 KiB) -> second-level table *)
  mutable entries : int;       (* live bound-table entries *)
  mutable loads : int;         (* BNDLDX walks *)
  mutable load_misses : int;   (* walks that found no entry *)
  mutable stores : int;        (* BNDSTX walks *)
  mutable dir_allocs : int;    (* second-level tables allocated *)
  mutable evictions : int;     (* entries overwritten in place *)
}

(* Extra cycles charged when a BNDSTX has to allocate a second-level
   table: the directory write plus the new table's setup traffic. *)
let dir_alloc_cycles = 6

let num_regs = 4

let granule key = key lsr 12

let create () =
  {
    regs = Array.init num_regs (fun _ -> { valid = false; lower = 0; upper = 0 });
    directory = Hashtbl.create 16;
    entries = 0;
    loads = 0;
    load_misses = 0;
    stores = 0;
    dir_allocs = 0;
    evictions = 0;
  }

let reg t i = t.regs.(i)

let set t i ~lower ~upper =
  let b = t.regs.(i) in
  b.valid <- true;
  b.lower <- lower;
  b.upper <- upper

let invalidate t i = t.regs.(i).valid <- false

(* [store] spills register [i]'s bounds at [key]; returns [true] when a
   second-level table had to be allocated (the caller charges
   [dir_alloc_cycles]). An invalid register stores the unbounded range,
   so a later reload stays permissive rather than faulting. *)
let store t i ~key =
  t.stores <- t.stores + 1;
  let b = t.regs.(i) in
  let entry = if b.valid then (b.lower, b.upper) else (0, 0xFFFFFFFF) in
  let g = granule key in
  let table, allocated =
    match Hashtbl.find_opt t.directory g with
    | Some tbl -> (tbl, false)
    | None ->
      let tbl = Hashtbl.create 32 in
      Hashtbl.replace t.directory g tbl;
      t.dir_allocs <- t.dir_allocs + 1;
      (tbl, true)
  in
  (match Hashtbl.find_opt table key with
   | Some old ->
     if old <> entry then t.evictions <- t.evictions + 1
   | None -> t.entries <- t.entries + 1);
  Hashtbl.replace table key entry;
  allocated

(* [load] reloads bounds for [key] into register [i]; returns [true] on
   a hit. A miss — no entry for that slot — loads the unbounded range
   (real MPX's INIT bounds), never faults: an unspilled pointer is an
   untracked one. *)
let load t i ~key =
  t.loads <- t.loads + 1;
  let entry =
    match Hashtbl.find_opt t.directory (granule key) with
    | Some table -> Hashtbl.find_opt table key
    | None -> None
  in
  match entry with
  | Some (lower, upper) ->
    set t i ~lower ~upper;
    true
  | None ->
    t.load_misses <- t.load_misses + 1;
    set t i ~lower:0 ~upper:0xFFFFFFFF;
    false

let reset t =
  Array.iter (fun b -> b.valid <- false; b.lower <- 0; b.upper <- 0) t.regs;
  Hashtbl.reset t.directory;
  t.entries <- 0;
  t.loads <- 0;
  t.load_misses <- 0;
  t.stores <- 0;
  t.dir_allocs <- 0;
  t.evictions <- 0

(* --- snapshot support ---------------------------------------------------- *)

(* Registers as (valid, lower, upper) triples, in register order. *)
let export_regs t =
  Array.to_list (Array.map (fun b -> (b.valid, b.lower, b.upper)) t.regs)

let import_regs t l =
  List.iteri
    (fun i (valid, lower, upper) ->
      if i < num_regs then begin
        t.regs.(i).valid <- valid;
        t.regs.(i).lower <- lower;
        t.regs.(i).upper <- upper
      end)
    l

(* Table entries as (key, lower, upper), sorted by key so the image is
   deterministic regardless of hash-table insertion history. *)
let export_table t =
  let all = ref [] in
  Hashtbl.iter
    (fun _ table ->
      Hashtbl.iter (fun key (lo, up) -> all := (key, lo, up) :: !all) table)
    t.directory;
  List.sort compare !all

let import_table t l =
  List.iter
    (fun (key, lower, upper) ->
      let g = granule key in
      let table =
        match Hashtbl.find_opt t.directory g with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 32 in
          Hashtbl.replace t.directory g tbl;
          tbl
      in
      if not (Hashtbl.mem table key) then t.entries <- t.entries + 1;
      Hashtbl.replace table key (lower, upper))
    l
