(* Segment registers with their hidden descriptor caches.

   Every x86 segment register has a visible part (the 16-bit selector) and a
   hidden part — a cache of the base, limit, and access rights copied from
   the descriptor at load time (§3.1 of the paper). Address translation uses
   only the cached copy; modifying the descriptor table does *not* affect a
   register already loaded. The simulator preserves this property because
   Cash's 3-entry segment-reuse cache depends on it being safe to leave
   stale selectors loaded.

   The hidden cache is kept twice: [cache] holds the full descriptor (for
   introspection and the fault-reporting slow path), and the [f_*] fields
   mirror the base / effective limit / writability as unboxed mutable
   scalars so the in-bounds common case of [translate] — the check run on
   every simulated memory reference — touches no options and calls no
   descriptor accessors. Both copies are written only by [load], so they
   cannot diverge. *)

type name = CS | SS | DS | ES | FS | GS

let name_to_string = function
  | CS -> "CS" | SS -> "SS" | DS -> "DS" | ES -> "ES" | FS -> "FS" | GS -> "GS"

let all_names = [ CS; SS; DS; ES; FS; GS ]

type t = {
  mutable selector : Selector.t;
  mutable cache : Descriptor.t option;
      (* None = loaded with the null selector (or never loaded). *)
  (* Flattened mirror of [cache], for the translation fast path. *)
  mutable f_valid : bool;
  mutable f_base : int;
  mutable f_limit : int; (* effective limit in bytes *)
  mutable f_writable : bool;
}

let create () =
  {
    selector = Selector.null;
    cache = None;
    f_valid = false;
    f_base = 0;
    f_limit = 0;
    f_writable = false;
  }

let selector t = t.selector
let cached_descriptor t = t.cache
let is_null t = t.cache = None

(* Refresh the flattened mirror from [cache]; the only other writer of the
   [f_*] fields is [create]. *)
let sync_flat t =
  match t.cache with
  | None ->
    t.f_valid <- false;
    t.f_base <- 0;
    t.f_limit <- 0;
    t.f_writable <- false
  | Some d ->
    t.f_valid <- true;
    t.f_base <- d.Descriptor.base;
    t.f_limit <- Descriptor.effective_limit d;
    t.f_writable <- Descriptor.is_writable d

(* Load a segment register: copies the descriptor into the hidden cache.
   [name] determines the architectural rules: CS and SS reject the null
   selector with #GP; data registers accept it but fault later on use. *)
let load t ~name ~selector ~descriptor =
  (match name, descriptor with
   | (CS | SS), None ->
     Fault.gp
       (Printf.sprintf "loading null selector into %s" (name_to_string name))
   | _, _ -> ());
  (match name, descriptor with
   | CS, Some d when not (Descriptor.is_code d) ->
     Fault.gp "loading non-code descriptor into CS"
   | SS, Some d when not (Descriptor.is_writable d) ->
     Fault.gp "loading non-writable descriptor into SS"
   | (DS | ES | FS | GS), Some d when Descriptor.is_call_gate d ->
     Fault.gp "loading call gate into a data segment register"
   | _ -> ());
  t.selector <- selector;
  t.cache <- descriptor;
  sync_flat t

(* Restore a serialized register verbatim: selector and hidden cache are
   written independently, bypassing [load]'s architectural checks. The
   checks ran when the snapshotted machine performed the original load;
   re-running them here against the *current* LDT would be wrong — the
   hidden cache may legitimately disagree with the table (that
   stale-selector property is exactly what Cash's 3-entry reuse cache
   depends on, and what a snapshot must preserve bit for bit). *)
let restore_raw t ~selector ~cache =
  t.selector <- selector;
  t.cache <- cache;
  sync_flat t

(* Fault path of [translate]: reached only when the fast-path test fails,
   so one of the conditions below must hold; raises with the exact
   diagnostics of the unflattened checker. *)
let translate_fault t ~name ~offset ~size ~write ~stack =
  match t.cache with
  | None ->
    Fault.gp
      (Printf.sprintf "memory access through null %s" (name_to_string name))
  | Some d ->
    if write && not (Descriptor.is_writable d) then
      Fault.gp (Printf.sprintf "write through read-only %s"
                  (name_to_string name));
    let msg =
      Printf.sprintf
        "segment limit violation: %s offset=0x%x size=%d limit=0x%x"
        (name_to_string name) (offset land 0xFFFFFFFF) size
        (Descriptor.effective_limit d)
    in
    if stack then Fault.ss msg else Fault.gp msg

(* The per-access check (Figure 1's first stage): verify the offset against
   the cached limit and translate to a linear address. [stack] selects #SS
   instead of #GP on violation. The in-bounds case — one compare chain over
   the flattened cache — is the hot path of the whole simulator.

   4 GiB boundary semantics (audited against Intel SDM Vol. 3A §6.3):
   [off + size - 1] is evaluated in OCaml's 63-bit integers and does NOT
   wrap at 2^32, so an access straddling the 4 GiB boundary (e.g. offset
   0xFFFF_FFFC, size 8) fails the limit check even against a flat
   segment whose effective limit is 0xFFFF_FFFF. The SDM makes exactly
   this case implementation-specific ("when the effective limit is
   FFFFFFFFH, accesses that wrap the 4-GByte boundary may or may not
   signal #GP/#SS"); the simulator pins the always-fault implementation,
   which is also the only safe choice for Cash — a wrapped access is
   never a legitimate array reference. For limits below 0xFFFF_FFFF the
   no-wrap evaluation matches the architected behaviour exactly: a huge
   (wrapped-negative) offset exceeds the limit and faults, which is how
   segmentation gives Cash its lower-bound check. The LINEAR address, by
   contrast, is architecturally defined to wrap at 2^32, and does
   ([land 0xFFFFFFFF] below) — Figure 2's end-aligned large segments
   rely on base + offset wrapping while the limit check does not.
   Regression-pinned in test/test_seghw.ml. *)
let[@inline] translate t ~name ~offset ~size ~write ~stack =
  let off = offset land 0xFFFFFFFF in
  if
    t.f_valid
    && ((not write) || t.f_writable)
    && size > 0
    && off + size - 1 <= t.f_limit
  then (t.f_base + off) land 0xFFFFFFFF
  else translate_fault t ~name ~offset ~size ~write ~stack

let pp ppf t =
  match t.cache with
  | None -> Fmt.pf ppf "%a -> null" Selector.pp t.selector
  | Some d -> Fmt.pf ppf "%a -> %a" Selector.pp t.selector Descriptor.pp d
