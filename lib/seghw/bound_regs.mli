(** MPX-style bounds registers (BND0-BND3) and the two-level bound
    directory/table that BNDSTX/BNDLDX spill through, keyed by the
    linear address of the pointer's memory slot. *)

type bnd = {
  mutable valid : bool;  (** invalid = unbounded; checks always pass *)
  mutable lower : int;
  mutable upper : int;   (** one past the end *)
}

type t = {
  regs : bnd array;
  directory : (int, (int, int * int) Hashtbl.t) Hashtbl.t;
  mutable entries : int;
  mutable loads : int;
  mutable load_misses : int;
  mutable stores : int;
  mutable dir_allocs : int;
  mutable evictions : int;
}

(** Extra cycles a BNDSTX pays when it must allocate a second-level
    table — the analogue of the paper's LDT-reload accounting. *)
val dir_alloc_cycles : int

val num_regs : int

val create : unit -> t
val reg : t -> int -> bnd
val set : t -> int -> lower:int -> upper:int -> unit
val invalidate : t -> int -> unit

(** Spill register [i]'s bounds at linear address [key]; [true] when a
    second-level table was allocated (charge [dir_alloc_cycles]). *)
val store : t -> int -> key:int -> bool

(** Reload bounds for [key] into register [i]; [true] on a hit. A miss
    loads the unbounded range and never faults. *)
val load : t -> int -> key:int -> bool

val reset : t -> unit

val export_regs : t -> (bool * int * int) list
val import_regs : t -> (bool * int * int) list -> unit

(** Entries as (key, lower, upper), sorted by key — deterministic
    regardless of insertion history. *)
val export_table : t -> (int * int * int) list

val import_table : t -> (int * int * int) list -> unit
