(** Hardware capability table for the capability backend: a capability
    word is [(index lsl 1) lor tag]; the table maps indices to
    [lower, upper) ranges, interned deterministically. *)

type t = {
  mutable entries : (int * int) array;
  mutable count : int;
  intern_tbl : (int * int, int) Hashtbl.t;
  mutable checks : int;
  mutable tag_clears : int;
}

val create : unit -> t

val tag_of : int -> int
val index_of : int -> int
val word_of_index : int -> int

(** Deterministic: equal ranges yield equal indices, FCFS. *)
val intern : t -> lower:int -> upper:int -> int

(** Bounds of an entry; out-of-table indices are unbounded. *)
val bounds : t -> int -> int * int

val count : t -> int
val reset : t -> unit

val export : t -> (int * int) list
val import : t -> (int * int) list -> unit
