(** Two-level page tables and a physical frame allocator: Figure 1's
    second stage. Frames are allocated on demand, so large sparse address
    spaces (the > 1 MiB array segments of Figure 2) stay cheap. *)

(** 4096. *)
val page_size : int

(** 12. *)
val page_shift : int

type t

val create : unit -> t

(** Map the page containing [linear] (allocating a fresh frame if
    unmapped); returns the frame number. An existing read-only mapping is
    upgraded when [writable] is set. *)
val map_page : t -> linear:int -> writable:bool -> int

val unmap_page : t -> linear:int -> unit

(** The page-table walk, linear to physical. Raises [#PF] ({!Fault.Fault})
    if unmapped or on a write to a read-only page. *)
val walk : t -> linear:int -> write:bool -> int

val is_mapped : t -> linear:int -> bool
val mapped_pages : t -> int
val frames_allocated : t -> int

(** {2 Snapshot support}

    The page-table walk is a function of the full PTE set and the frame
    allocator's cursor, so these four entry points are sufficient to
    serialize and rebuild a paging unit exactly. *)

(** Every live PTE as [(linear page number, frame, present, writable)],
    in increasing page order (deterministic for byte-stable snapshots). *)
val entries : t -> (int * int * bool * bool) list

(** Drop every mapping and reset the frame allocator to 0. *)
val reset : t -> unit

(** Reinstall one PTE by linear page number. *)
val restore_entry :
  t -> page:int -> frame:int -> present:bool -> writable:bool -> unit

(** Restore the sequential frame allocator's cursor. *)
val set_next_frame : t -> int -> unit
