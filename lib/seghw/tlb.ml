(* A small direct-mapped translation lookaside buffer.

   Caches linear-page -> physical-frame translations to skip the two-level
   walk on hits. The simulator tracks hit/miss counts so tests can verify
   that invalidation works and benchmarks can report locality effects.

   Storage is three parallel unboxed arrays (tag / frame / writable)
   rather than an [entry option] array: a lookup on the interpreter's hot
   path touches only immediates and allocates nothing. An empty slot is
   encoded by the [empty_tag] sentinel, which no real page number can
   equal (linear addresses are 32-bit, so page numbers are at most
   2^20 - 1). *)

type t = {
  tags : int array;        (* linear page number, or [empty_tag] *)
  frames : int array;
  writable : bool array;
  mask : int;              (* size - 1; size is a power of two *)
  mutable hits : int;
  mutable misses : int;
  mutable gen : int;       (* bumped whenever any entry changes *)
}

let empty_tag = -1

(* Sentinel returned by [lookup] on a miss. *)
let miss = -1

let create ?(size = 64) () =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Tlb.create: size must be a positive power of two";
  {
    tags = Array.make size empty_tag;
    frames = Array.make size 0;
    writable = Array.make size false;
    mask = size - 1;
    hits = 0;
    misses = 0;
    gen = 0;
  }

(* Look up the frame for [page] (a linear page number). A write probing a
   read-only entry is a miss: the caller must walk the page tables (which
   enforce write protection) and re-[insert], upgrading the entry in
   place. *)
let[@inline] lookup t ~page ~write =
  let s = page land t.mask in
  if
    Array.unsafe_get t.tags s = page
    && ((not write) || Array.unsafe_get t.writable s)
  then begin
    t.hits <- t.hits + 1;
    Array.unsafe_get t.frames s
  end
  else begin
    t.misses <- t.misses + 1;
    miss
  end

(* Fill (or upgrade in place) the slot for [page]. Because the TLB is
   direct-mapped, inserting over an existing same-page read-only entry
   after a write walk mutates that slot directly — no aliased stale entry
   survives, so the read-only-hit-as-write-miss penalty is paid exactly
   once per upgrade.

   Every mutation (insert, page invalidation, full flush) bumps [gen]:
   derived caches keyed on a TLB entry — the CPU's per-segment memory
   fast path — compare their recorded generation and fall back to a real
   probe when it moved. Conservative (an insert into slot 3 also kills a
   derived entry for slot 5) but exact invalidation would cost a
   per-probe slot comparison on the hot path for no measured benefit. *)
let insert t ~page ~frame ~writable =
  let s = page land t.mask in
  t.tags.(s) <- page;
  t.frames.(s) <- frame;
  t.writable.(s) <- writable;
  t.gen <- t.gen + 1

let invalidate_page t ~page =
  let s = page land t.mask in
  if t.tags.(s) = page then begin
    t.tags.(s) <- empty_tag;
    t.gen <- t.gen + 1
  end

(* Full flush, as on a CR3 reload. *)
let flush t =
  Array.fill t.tags 0 (t.mask + 1) empty_tag;
  t.gen <- t.gen + 1

let hits t = t.hits
let misses t = t.misses
