(** The memory-management unit: Figure 1's full pipeline.

    logical (segment register + offset)
      → segment-limit & protection check → linear
      → TLB / two-level walk → physical

    Every data access of the simulated CPU goes through {!translate}, so
    the segment-limit check Cash exploits runs on every reference, as on
    real hardware. *)

(** Exposed concretely so the interpreter can flatten the hot
    translation pipeline (segment-limit check + TLB probe) into its own
    compilation unit — under dune's dev profile cross-module calls are
    opaque generic applications, so the per-access path must not leave
    the engine's unit. Mutate only [limit_checks] (and only as
    {!translate} does: one increment per segment-limit check); every
    other field is wired once by [create] / {!set_ldt}. *)
type t = {
  gdt : Descriptor_table.t;
  mutable ldt : Descriptor_table.t;  (** the LDTR *)
  cs : Segreg.t;
  ss : Segreg.t;
  ds : Segreg.t;
  es : Segreg.t;
  fs : Segreg.t;
  gs : Segreg.t;
  paging : Paging.t;
  tlb : Tlb.t;
  bndregs : Bound_regs.t;  (** MPX bounds registers + bound table *)
  captab : Captab.t;  (** capability-backend hardware table *)
  mutable limit_checks : int;  (** segment-limit checks performed *)
  mutable trace : Trace.sink option;
      (** event sink; [None] (the default) keeps every emit site to one
          load-and-branch. The CPU's flattened translation copy tests
          this same field, so attach/detach through {!set_trace} (or
          [Machine.Cpu.set_sink], which forwards here). *)
}

val create : gdt:Descriptor_table.t -> ldt:Descriptor_table.t -> t

(** Attach or detach the event sink. Detached is the default; tracing
    never changes translation results or counters. *)
val set_trace : t -> Trace.sink option -> unit

val trace : t -> Trace.sink option

val seg : t -> Segreg.name -> Segreg.t
val gdt : t -> Descriptor_table.t
val ldt : t -> Descriptor_table.t
val paging : t -> Paging.t
val tlb : t -> Tlb.t
val bndregs : t -> Bound_regs.t
val captab : t -> Captab.t

(** Reload the LDTR: future segment loads resolve against the new
    table (already-loaded registers keep their descriptor caches). *)
val set_ldt : t -> Descriptor_table.t -> unit

(** Segment-register load: resolve [selector] through the GDT/LDT and
    fill the hidden cache. Null selectors load an empty cache for data
    registers and fault for CS/SS. *)
val load_segreg : t -> Segreg.name -> Selector.t -> unit

(** Read back the visible selector, as [MOV r, sreg] does. *)
val read_segreg : t -> Segreg.name -> Selector.t

(** Full logical-to-physical translation for a [size]-byte access; one
    segment-limit check plus a TLB lookup (or walk). *)
val translate :
  t -> seg_name:Segreg.name -> offset:int -> size:int -> write:bool -> int

(** Flat linear-to-physical translation, bypassing segmentation — used by
    the simulated kernel and loaders. *)
val translate_linear : t -> linear:int -> write:bool -> int

(** Demand-map all pages covering [linear, linear + size). *)
val map_range : t -> linear:int -> size:int -> writable:bool -> unit

(** Number of segment-limit checks performed so far. *)
val limit_checks : t -> int
