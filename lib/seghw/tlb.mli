(** A direct-mapped translation lookaside buffer over {!Paging}, with
    hit/miss counters.

    Entries live in unboxed parallel arrays; {!lookup} returns an [int]
    with the {!miss} sentinel instead of an option so the interpreter's
    hot path allocates nothing.

    {2 Hit/miss accounting}

    Every probe bumps exactly one counter. A write probing an entry that
    was inserted by a read (and is therefore cached non-writable) counts
    as {e one} miss; the caller then walks the page tables and
    re-inserts, which upgrades the slot in place — the next write to the
    same page hits. A read never misses on a writable entry. *)

(** Exposed concretely so the interpreter's flattened translation fast
    path can probe the arrays with direct loads (cross-module calls are
    opaque under dune's dev profile). Treat every field as private to
    {!Tlb} and the engine fast path: mutate only through {!insert} /
    {!invalidate_page} / {!flush}, and keep the counter discipline of
    the accounting note above. *)
type t = {
  tags : int array;        (** linear page number per slot, or [-1] = empty *)
  frames : int array;
  writable : bool array;
  mask : int;              (** slot count - 1; always a power of two *)
  mutable hits : int;
  mutable misses : int;
  mutable gen : int;
      (** generation counter: bumped by every {!insert},
          {!invalidate_page} that hits, and {!flush}. Caches derived
          from a TLB entry (the CPU's per-segment fast path) record the
          generation at fill time and re-probe when it has moved. *)
}

(** [create ?size ()] builds a TLB with [size] slots (default 64).
    @raise Invalid_argument unless [size] is a positive power of two. *)
val create : ?size:int -> unit -> t

(** Returned by {!lookup} when the translation is not cached. Negative,
    so [lookup ... >= 0] tests for a hit. *)
val miss : int

(** [lookup t ~page ~write] returns the cached frame, or {!miss} —
    including a write probing a read-only entry. Updates counters. *)
val lookup : t -> page:int -> write:bool -> int

(** [insert t ~page ~frame ~writable] fills the slot for [page],
    replacing whatever occupied it — including upgrading a read-only
    entry for the same page in place after a write walk. *)
val insert : t -> page:int -> frame:int -> writable:bool -> unit

val invalidate_page : t -> page:int -> unit

(** Full flush, as on a CR3 reload. *)
val flush : t -> unit

val hits : t -> int
val misses : t -> int
