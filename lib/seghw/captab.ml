(* The hardware capability table for the [Backend.Cap] compiler.

   A capability word, as the compiled code carries it next to every
   pointer value, is [(index lsl 1) lor tag]: bit 0 is the validity tag
   (GANDALF-style — cleared by pointer arithmetic that escapes the
   bounds, and checked in hardware on every dereference), and the upper
   bits index this table, which holds the [lower, upper) byte range the
   capability grants access to.

   Interning is deterministic: the same (lower, upper) pair always
   yields the same index, and indices are handed out first-come
   first-served — so capability words, and therefore all simulated
   state, are identical across engines and across runs. The table is
   hardware-owned (it lives beside the LDT, not in guest memory), which
   is what lets capability pointers stay 2 words with no per-object
   info structures in the data image. *)

type t = {
  mutable entries : (int * int) array;  (* index -> (lower, upper) *)
  mutable count : int;
  intern_tbl : (int * int, int) Hashtbl.t;
  mutable checks : int;      (* Capchk executions *)
  mutable tag_clears : int;  (* Capclr clears actually taken *)
}

let create () =
  {
    entries = Array.make 16 (0, 0);
    count = 0;
    intern_tbl = Hashtbl.create 32;
    checks = 0;
    tag_clears = 0;
  }

let tag_of word = word land 1
let index_of word = word lsr 1
let word_of_index idx = (idx lsl 1) lor 1

let intern t ~lower ~upper =
  match Hashtbl.find_opt t.intern_tbl (lower, upper) with
  | Some idx -> idx
  | None ->
    let idx = t.count in
    if idx >= Array.length t.entries then begin
      let bigger = Array.make (2 * Array.length t.entries) (0, 0) in
      Array.blit t.entries 0 bigger 0 t.count;
      t.entries <- bigger
    end;
    t.entries.(idx) <- (lower, upper);
    t.count <- idx + 1;
    Hashtbl.replace t.intern_tbl (lower, upper) idx;
    idx

(* Bounds of a capability word's entry; an out-of-table index (possible
   only through forged integer-to-pointer bit patterns) is unbounded. *)
let bounds t idx =
  if idx >= 0 && idx < t.count then t.entries.(idx) else (0, 0xFFFFFFFF)

let count t = t.count

let reset t =
  t.count <- 0;
  Hashtbl.reset t.intern_tbl;
  t.checks <- 0;
  t.tag_clears <- 0

(* --- snapshot support ---------------------------------------------------- *)

let export t = List.init t.count (fun i -> t.entries.(i))

let import t l =
  List.iter (fun (lower, upper) -> ignore (intern t ~lower ~upper)) l
