(* Two-level page tables and a physical frame allocator.

   The x86 splits a 32-bit linear address into a 10-bit page-directory
   index, a 10-bit page-table index, and a 12-bit page offset (Figure 1's
   second stage). The simulator walks a real two-level structure; frames
   are allocated on demand by the simulated kernel (demand paging keeps
   large sparse address spaces cheap, which matters for >1 MiB array
   segments in the Figure 2 experiment). *)

let page_size = 4096
let page_shift = 12

type pte = { mutable frame : int; mutable present : bool; mutable writable : bool }

type page_table = pte option array (* 1024 entries *)

type t = {
  directory : page_table option array; (* 1024 entries *)
  mutable next_frame : int;
  mutable mapped_pages : int;
}

let create () =
  { directory = Array.make 1024 None; next_frame = 0; mapped_pages = 0 }

let split linear =
  let linear = linear land 0xFFFFFFFF in
  (linear lsr 22, (linear lsr 12) land 0x3FF, linear land 0xFFF)

let alloc_frame t =
  let f = t.next_frame in
  t.next_frame <- t.next_frame + 1;
  f

(* Map the page containing [linear] to a fresh frame (if not mapped).
   Returns the frame number. *)
let map_page t ~linear ~writable =
  let dir_idx, tbl_idx, _ = split linear in
  let table =
    match t.directory.(dir_idx) with
    | Some tbl -> tbl
    | None ->
      let tbl = Array.make 1024 None in
      t.directory.(dir_idx) <- Some tbl;
      tbl
  in
  match table.(tbl_idx) with
  | Some pte ->
    if writable && not pte.writable then pte.writable <- true;
    pte.frame
  | None ->
    let frame = alloc_frame t in
    table.(tbl_idx) <- Some { frame; present = true; writable };
    t.mapped_pages <- t.mapped_pages + 1;
    frame

let unmap_page t ~linear =
  let dir_idx, tbl_idx, _ = split linear in
  match t.directory.(dir_idx) with
  | None -> ()
  | Some tbl ->
    (match tbl.(tbl_idx) with
     | Some _ -> t.mapped_pages <- t.mapped_pages - 1
     | None -> ());
    tbl.(tbl_idx) <- None

(* The page-table walk: linear -> physical. Faults with #PF if unmapped or
   on a write to a read-only page. *)
let walk t ~linear ~write =
  let dir_idx, tbl_idx, off = split linear in
  match t.directory.(dir_idx) with
  | None -> Fault.pf ~linear ~write
  | Some tbl ->
    match tbl.(tbl_idx) with
    | None -> Fault.pf ~linear ~write
    | Some pte ->
      if not pte.present then Fault.pf ~linear ~write;
      if write && not pte.writable then Fault.pf ~linear ~write;
      (pte.frame lsl page_shift) lor off

let is_mapped t ~linear =
  let dir_idx, tbl_idx, _ = split linear in
  match t.directory.(dir_idx) with
  | None -> false
  | Some tbl ->
    (match tbl.(tbl_idx) with Some pte -> pte.present | None -> false)

let mapped_pages t = t.mapped_pages
let frames_allocated t = t.next_frame

(* --- snapshot support --------------------------------------------------- *)

(* Every live PTE as (linear page number, frame, present, writable), in
   increasing page order — the directory is walked index-ascending, so
   the listing is deterministic for the snapshot's byte-stable format. *)
let entries t =
  let acc = ref [] in
  for dir_idx = 1023 downto 0 do
    match t.directory.(dir_idx) with
    | None -> ()
    | Some tbl ->
      for tbl_idx = 1023 downto 0 do
        match tbl.(tbl_idx) with
        | None -> ()
        | Some pte ->
          acc :=
            ((dir_idx lsl 10) lor tbl_idx, pte.frame, pte.present, pte.writable)
            :: !acc
      done
  done;
  !acc

(* Drop every mapping and reset the frame allocator; [restore_entry]
   rebuilds the structure from a snapshot's listing. *)
let reset t =
  Array.fill t.directory 0 1024 None;
  t.next_frame <- 0;
  t.mapped_pages <- 0

let restore_entry t ~page ~frame ~present ~writable =
  let dir_idx = (page lsr 10) land 0x3FF and tbl_idx = page land 0x3FF in
  let table =
    match t.directory.(dir_idx) with
    | Some tbl -> tbl
    | None ->
      let tbl = Array.make 1024 None in
      t.directory.(dir_idx) <- Some tbl;
      tbl
  in
  (match table.(tbl_idx) with
   | Some _ -> ()
   | None -> t.mapped_pages <- t.mapped_pages + 1);
  table.(tbl_idx) <- Some { frame; present; writable }

let set_next_frame t n = t.next_frame <- n
