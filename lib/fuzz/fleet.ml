(* The fuzzing fleet: generate -> check -> (shrink -> dump) over the
   domain pool.

   Every seed is an independent deterministic simulation, so the fleet
   fans out through {!Parallel.run_jobs} exactly like the experiment
   harness: one atomic index hands seeds to workers, results land in
   per-seed slots, and the collected output — including the failure
   list — is byte-identical to a serial run regardless of worker count.

   A failing seed is handled ENTIRELY inside its own job: the original
   program is dumped, the shrinker descends on it (re-running the same
   check configuration as its predicate), and the shrunk reproducer is
   re-checked one last time so ITS crash snapshot — not the original's —
   lands next to it as [seed_N.min.snap]. The fleet keeps running
   through failures; callers get them all, in seed order, in
   [stats.failures]. *)

type engine_choice =
  | Fast  (* block engine with chaining only — throughput runs *)
  | All  (* the full differential matrix, reference every 7th seed *)

type config = {
  count : int;  (* programs to generate *)
  first_seed : int;
  oob_every : int;  (* every Nth program gets an injected overrun; 0 = none *)
  engines : engine_choice;
  jobs : int option;  (* worker domains; [None] = CASH_JOBS / recommended *)
  dump_dir : string option;  (* [None] = no artifacts *)
  force_fail : int option;  (* CI drill: force this seed to fail *)
  shrink : bool;
  plugins : bool;  (* shipped checker plugins on every cash run *)
}

let default =
  {
    count = 1000;
    first_seed = 0;
    oob_every = 3;
    engines = Fast;
    jobs = None;
    dump_dir = Some "fuzz-failures";
    force_fail = None;
    shrink = true;
    plugins = false;
  }

type failure_report = {
  r_seed : int;
  r_what : string;
  r_backend : string;
  r_message : string;
  r_artifacts : string list;  (* files written, original first *)
  r_min_src : string option;  (* shrunk reproducer source *)
}

type stats = {
  ran : int;
  oob_injected : int;
  known_misses : int;  (* direct overruns cash passed on by §3.8 policy *)
  failures : failure_report list;  (* seed order *)
  wall_seconds : float;  (* whole run: check AND shrink/dump phases *)
  programs_per_sec : float;  (* count / wall_seconds *)
  (* The check phase alone, timed per seed inside its job and summed
     across workers (so above one job it exceeds the wall clock).
     Shrinking a failure re-runs the predicate dozens of times and
     dumping touches the filesystem; folding that into one wall-clock
     rate made a run with failures look like a slow fleet. The pair
     below reports generator+checker throughput undistorted. *)
  check_seconds : float;
  check_programs_per_sec : float;  (* count / check_seconds *)
  (* The frontend+codegen slice of the check phase: seconds spent
     inside [Core.compile] (lex, parse, typecheck, codegen), summed
     across workers like [check_seconds] — the rest of the check phase
     is execution and comparison. Each check compiles its three
     backends once, ahead of the engine loop (see [Check]), so this is
     a clean per-program frontend cost; a rising share across
     otherwise-identical runs means a frontend regression. *)
  compile_seconds : float;
  compile_share : float;  (* compile_seconds / check_seconds; 0 if unknown *)
}

let engines_for cfg ~seed =
  match cfg.engines with
  | Fast -> Check.fast_engines
  | All -> Check.all_engines ~seed

let check_seed cfg ~seed prog =
  Check.check ~engines:(engines_for cfg ~seed) ~plugins:cfg.plugins
    ~force_fail:(cfg.force_fail = Some seed) ~seed prog

let report_failure cfg ~seed prog (f : Check.failure) =
  let dump ?suffix (f : Check.failure) =
    match cfg.dump_dir with
    | None -> []
    | Some dir ->
      Dump.dump_failure ~dir ~seed ?suffix ~what:f.f_what ~backend:f.f_backend
        ~src:f.f_src f.f_run
  in
  let artifacts = dump f in
  let min_src, min_artifacts =
    if not cfg.shrink then (None, [])
    else begin
      let pred p = Check.failed (check_seed cfg ~seed p) in
      let small = Shrink.minimize ~pred prog in
      (* Re-check the shrunk program so its own terminal machine state
         gets snapshotted for replay. By [minimize]'s contract it still
         fails; if it somehow passes (a flaky predicate would be a bug
         in itself), record the source without artifacts. *)
      match check_seed cfg ~seed small with
      | Check.Fail mf -> (Some mf.f_src, dump ~suffix:".min" mf)
      | Check.Pass _ -> (Some (Gen.render small), [])
    end
  in
  {
    r_seed = seed;
    r_what = f.f_what;
    r_backend = Core.backend_name f.f_backend;
    r_message = f.f_message;
    r_artifacts = artifacts @ min_artifacts;
    r_min_src = min_src;
  }

let run cfg =
  let t0 = Unix.gettimeofday () in
  let compile0 = Core.compile_seconds () in
  let tasks =
    Array.init cfg.count (fun i () ->
        let seed = cfg.first_seed + i in
        let oob = cfg.oob_every > 0 && i mod cfg.oob_every = cfg.oob_every - 1 in
        (* Generate + check is the phase whose throughput the fleet
           reports; shrink + dump (inside [report_failure]) is failure
           triage and is timed only by the whole-run wall clock. *)
        let c0 = Unix.gettimeofday () in
        let prog = Gen.generate ~seed ~oob in
        let verdict = check_seed cfg ~seed prog in
        let check_dt = Unix.gettimeofday () -. c0 in
        match verdict with
        | Check.Pass { known_miss } -> (oob, known_miss, None, check_dt)
        | Check.Fail f ->
          (oob, false, Some (report_failure cfg ~seed prog f), check_dt))
  in
  let results = Parallel.run_jobs ?jobs:cfg.jobs tasks in
  let compile_seconds = Core.compile_seconds () -. compile0 in
  let wall = Unix.gettimeofday () -. t0 in
  let oob_injected = ref 0 and known_misses = ref 0 and failures = ref [] in
  let check_seconds = ref 0. in
  Array.iter
    (fun (oob, miss, failure, check_dt) ->
      if oob then incr oob_injected;
      if miss then incr known_misses;
      check_seconds := !check_seconds +. check_dt;
      match failure with Some r -> failures := r :: !failures | None -> ())
    results;
  {
    ran = cfg.count;
    oob_injected = !oob_injected;
    known_misses = !known_misses;
    failures = List.rev !failures;
    wall_seconds = wall;
    programs_per_sec =
      (if wall > 0. then float_of_int cfg.count /. wall else 0.);
    check_seconds = !check_seconds;
    check_programs_per_sec =
      (if !check_seconds > 0. then float_of_int cfg.count /. !check_seconds
       else 0.);
    compile_seconds;
    compile_share =
      (if !check_seconds > 0. then compile_seconds /. !check_seconds else 0.);
  }
