(* Structured mini-C program generator.

   Programs are generated as a small typed STRUCTURE — arrays, helper
   functions, a list of operations, and an optional injected
   out-of-bounds access — and only then rendered to source. The
   structure is what makes shrinking work: dropping an op or shrinking
   an array is an edit to the structure, and [render] re-derives
   everything implied by it (which arrays are declared, which helpers
   are emitted, which arrays are folded into the final checksum), so
   every shrunk candidate is a well-formed program by construction.

   In-bounds-ness is also by construction: [render] clamps every
   in-bounds access to the (current) array size, so a shrinking pass
   that halves an array cannot accidentally turn a correct program
   into an overrunning one. The injected overrun is the only
   out-of-bounds access, and it stays out of bounds under any size.

   Overrun shapes cover BOTH sides of Cash's checking policy (§3.8:
   the compiler checks references inside loops only):

   - the three loop shapes (store / load / pointer walk) run 1-3
     elements past the end and MUST be caught by bcc and cash alike;
   - the two direct shapes (straight-line store / load at a constant
     out-of-bounds index) must be caught by bcc, while cash misses
     them BY POLICY — the harness verifies that miss honestly (see
     [Check]) instead of reporting it as a divergence.

   Overruns stay small (≤ [64] ints past the end, inside the zpad
   landing pad) so the unchecked baseline corrupts silently instead of
   crashing — exactly the failure mode the paper's mechanism closes. *)

type arr = { a_id : int; size : int }

type helper_kind = Hsum | Hdot | Hwstore

type helper = { h_id : int; h_kind : helper_kind; h_k : int }

type op =
  | Fill of { a : int; mult : int; add : int }
  | Sum of { a : int }
  | Nested of { a : int; b : int }
  | Ptr_walk of { a : int }
  | Offset_read of { a : int; base : int; off : int }
  | Cond_store of { a : int; i0 : int; i1 : int }
  | Alias_mix of { a : int; gap : int; n : int }
  | Call1 of { h : int; a : int; n : int }  (* Hsum/Hwstore helper *)
  | Call2 of { h : int; a : int; b : int; n : int }  (* Hdot helper *)

type oob_shape =
  | O_loop_store
  | O_loop_load
  | O_loop_ptr
  | O_direct_store
  | O_direct_load

type oob = { shape : oob_shape; o_arr : int; past : int }

type prog = {
  arrays : arr list;
  helpers : helper list;
  ops : op list;
  oob : oob option;
}

(* Is the injected overrun a straight-line reference — the shape Cash
   leaves unchecked by policy? *)
let oob_is_direct = function
  | Some { shape = O_direct_store | O_direct_load; _ } -> true
  | Some _ | None -> false

(* --- rendering ----------------------------------------------------------- *)

let arrays_of_op = function
  | Fill { a; _ } | Sum { a } | Ptr_walk { a } | Offset_read { a; _ }
  | Cond_store { a; _ } | Alias_mix { a; _ } | Call1 { a; _ } ->
    [ a ]
  | Nested { a; b } | Call2 { a; b; _ } -> [ a; b ]

let helper_of_op = function
  | Call1 { h; _ } | Call2 { h; _ } -> Some h
  | _ -> None

(* Arrays/helpers actually referenced by the program, in id order.
   [render] declares exactly these, so structural shrinking of the op
   list shrinks the declarations with it. *)
let live_arrays p =
  let refs =
    List.concat_map arrays_of_op p.ops
    @ (match p.oob with Some { o_arr; _ } -> [ o_arr ] | None -> [])
  in
  List.filter (fun a -> List.mem a.a_id refs) p.arrays

let live_helpers p =
  let refs = List.filter_map helper_of_op p.ops in
  List.filter (fun h -> List.mem h.h_id refs) p.helpers

let find_arr p id =
  match List.find_opt (fun a -> a.a_id = id) p.arrays with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Gen: op references array g%d" id)

let clamp lo hi v = max lo (min hi v)

let render_helper buf h =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match h.h_kind with
  | Hsum ->
    pr
      "int h%d(int *p, int n) {\n\
      \  int i; int s; s = 0;\n\
      \  for (i = 0; i < n; i = i + 1) s = (s + p[i] * %d) %% 9973;\n\
      \  return s;\n\
       }\n"
      h.h_id h.h_k
  | Hdot ->
    pr
      "int h%d(int *p, int *q, int n) {\n\
      \  int i; int s; s = 0;\n\
      \  for (i = 0; i < n; i = i + 1) s = (s + p[i] * q[i] + %d) %% 9973;\n\
      \  return s;\n\
       }\n"
      h.h_id h.h_k
  | Hwstore ->
    pr
      "int h%d(int *p, int n) {\n\
      \  int i;\n\
      \  for (i = 0; i < n; i = i + 1) p[i] = (p[i] * %d + i) %% 97;\n\
      \  return n;\n\
       }\n"
      h.h_id h.h_k

let render_op p buf op =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let g id = Printf.sprintf "g%d" id in
  match op with
  | Fill { a; mult; add } ->
    let s = (find_arr p a).size in
    pr "  for (i = 0; i < %d; i = i + 1) %s[i] = (i * %d + %d) %% 97;\n" s
      (g a) mult add
  | Sum { a } ->
    let s = (find_arr p a).size in
    pr "  for (i = 0; i < %d; i = i + 1) acc = (acc + %s[i]) %% 9973;\n" s (g a)
  | Nested { a; b } ->
    let sa = (find_arr p a).size and sb = (find_arr p b).size in
    pr
      "  for (i = 0; i < %d; i = i + 1)\n\
      \    for (j = 0; j < %d; j = j + 1)\n\
      \      acc = (acc + %s[i] * %s[j]) %% 9973;\n"
      sa sb (g a) (g b)
  | Ptr_walk { a } ->
    let s = (find_arr p a).size in
    pr
      "  {\n\
      \    int *p = %s;\n\
      \    for (i = 0; i < %d; i = i + 1) { acc = (acc + *p) %% 9973; p = p + \
       1; }\n\
      \  }\n"
      (g a) s
  | Offset_read { a; base; off } ->
    let s = (find_arr p a).size in
    let base = clamp 0 (s - 1) base in
    let off = clamp 0 (s - 1 - base) off in
    pr "  { int *p = %s + %d; acc = (acc + p[%d]) %% 9973; }\n" (g a) base off
  | Cond_store { a; i0; i1 } ->
    let s = (find_arr p a).size in
    let i0 = clamp 0 (s - 1) i0 and i1 = clamp 0 (s - 1) i1 in
    pr "  if (%s[%d] > 40) %s[%d] = acc %% 89; else %s[%d] = (acc + 7) %% 89;\n"
      (g a) i0 (g a) i1 (g a) i1
  | Alias_mix { a; gap; n } ->
    let s = (find_arr p a).size in
    let gap = clamp 0 (s - 1) gap in
    let n = clamp 1 (s - gap) n in
    pr
      "  {\n\
      \    int *p = %s;\n\
      \    int *q = %s + %d;\n\
      \    for (i = 0; i < %d; i = i + 1) { *p = (*p + *q * 3) %% 97; p = p + \
       1; q = q + 1; }\n\
      \  }\n"
      (g a) (g a) gap n
  | Call1 { h; a; n } ->
    let s = (find_arr p a).size in
    let n = clamp 1 s n in
    pr "  acc = (acc + h%d(%s, %d)) %% 9973;\n" h (g a) n
  | Call2 { h; a; b; n } ->
    let sa = (find_arr p a).size and sb = (find_arr p b).size in
    let n = clamp 1 (min sa sb) n in
    pr "  acc = (acc + h%d(%s, %s, %d)) %% 9973;\n" h (g a) (g b) n

let render_oob p buf { shape; o_arr; past } =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let a = find_arr p o_arr in
  let g = Printf.sprintf "g%d" a.a_id in
  match shape with
  | O_loop_store ->
    pr "  for (i = 0; i <= %d; i = i + 1) %s[i] = i;\n" (a.size + past) g
  | O_loop_load ->
    pr "  for (i = 0; i <= %d; i = i + 1) acc = (acc + %s[i]) %% 9973;\n"
      (a.size + past) g
  | O_loop_ptr ->
    pr
      "  {\n\
      \    int *p = %s;\n\
      \    for (i = 0; i <= %d; i = i + 1) { acc = acc + *p; p = p + 1; }\n\
      \  }\n"
      g (a.size + past)
  | O_direct_store -> pr "  %s[%d] = 77;\n" g (a.size + past)
  | O_direct_load -> pr "  acc = (acc + %s[%d]) %% 9973;\n" g (a.size + past)

let render p =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let live = live_arrays p in
  List.iter (fun a -> pr "int g%d[%d];\n" a.a_id a.size) live;
  (* Landing pad: keeps the baseline's small overruns inside the data
     section (declaration order is layout order), so gcc corrupts
     silently rather than faulting. *)
  if p.oob <> None && live <> [] then pr "int zpad[64];\n";
  List.iter (render_helper buf) (live_helpers p);
  pr "int main() {\n  int i; int j; int acc = 0;\n";
  List.iter (render_op p buf) p.ops;
  (* Fold every live array back into the checksum so stores above are
     observable in the printed output. *)
  List.iter
    (fun a ->
      pr "  for (i = 0; i < %d; i = i + 1) acc = (acc * 31 + g%d[i]) %% 99991;\n"
        a.size a.a_id)
    live;
  (match p.oob with
   | Some oob when live_arrays p <> [] -> render_oob p buf oob
   | _ -> ());
  pr "  print_int(acc);\n  return 0;\n}\n";
  Buffer.contents buf

(* --- generation ---------------------------------------------------------- *)

(* One program, from its own PRNG state: same seed, same program —
   a reported seed reproduces the failing program exactly. *)
let gen_program st ~oob =
  let n_arrays = 1 + Random.State.int st 3 in
  let arrays =
    List.init n_arrays (fun i -> { a_id = i; size = 4 + Random.State.int st 21 })
  in
  let n_helpers = Random.State.int st 3 in
  let helpers =
    List.init n_helpers (fun i ->
        let h_kind =
          match Random.State.int st 3 with
          | 0 -> Hsum
          | 1 -> Hdot
          | _ -> Hwstore
        in
        { h_id = i; h_kind; h_k = 2 + Random.State.int st 7 })
  in
  let pick_arr () = Random.State.int st n_arrays in
  let size_of id = (List.nth arrays id).size in
  let fills =
    List.mapi
      (fun k a ->
        Fill { a = a.a_id; mult = 3 + (2 * k); add = 1 + Random.State.int st 50 })
      arrays
  in
  let n_ops = 2 + Random.State.int st 5 in
  let gen_op () =
    match Random.State.int st 8 with
    | 0 -> Sum { a = pick_arr () }
    | 1 -> Nested { a = pick_arr (); b = pick_arr () }
    | 2 -> Ptr_walk { a = pick_arr () }
    | 3 ->
      let a = pick_arr () in
      let s = size_of a in
      let base = Random.State.int st s in
      Offset_read { a; base; off = Random.State.int st (s - base) }
    | 4 ->
      let a = pick_arr () in
      let s = size_of a in
      Cond_store { a; i0 = Random.State.int st s; i1 = Random.State.int st s }
    | 5 ->
      let a = pick_arr () in
      let s = size_of a in
      let gap = Random.State.int st s in
      Alias_mix { a; gap; n = 1 + Random.State.int st (max 1 (s - gap)) }
    | _ when helpers = [] -> Sum { a = pick_arr () }
    | _ -> (
      let h = List.nth helpers (Random.State.int st n_helpers) in
      match h.h_kind with
      | Hsum | Hwstore ->
        let a = pick_arr () in
        Call1 { h = h.h_id; a; n = 1 + Random.State.int st (size_of a) }
      | Hdot ->
        let a = pick_arr () and b = pick_arr () in
        let s = min (size_of a) (size_of b) in
        Call2 { h = h.h_id; a; b; n = 1 + Random.State.int st s })
  in
  let ops = fills @ List.init n_ops (fun _ -> gen_op ()) in
  let oob =
    if not oob then None
    else
      let o_arr = pick_arr () in
      let past = Random.State.int st 3 in
      let shape =
        match Random.State.int st 5 with
        | 0 -> O_loop_store
        | 1 -> O_loop_load
        | 2 -> O_loop_ptr
        | 3 -> O_direct_store
        | _ -> O_direct_load
      in
      Some { shape; o_arr; past }
  in
  { arrays; helpers; ops; oob }

let generate ~seed ~oob =
  gen_program (Random.State.make [| 0xC0DE; seed |]) ~oob
