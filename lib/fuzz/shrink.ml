(* Greedy structural shrinking.

   [minimize ~pred prog] takes a program for which [pred] holds ("still
   fails the differential property") and returns a smaller one for
   which it still holds. Candidates are STRUCTURAL edits — drop the
   injected overrun, drop one operation, shrink an array, pull the
   overrun distance to zero — generated in a fixed order, and the first
   candidate that keeps failing restarts the search from itself
   (first-improvement greedy descent to a fixpoint). Everything about
   the process is deterministic, so the same seed always shrinks to the
   byte-identical reproducer.

   Every candidate strictly decreases the measure (op count, overrun
   presence, total array size, overrun distance), so the descent
   terminates; and because [Gen.render] clamps all in-bounds accesses
   to the current array sizes, no size edit can turn an in-bounds
   program into an out-of-bounds one — the predicate keeps measuring
   the ORIGINAL failure, not one the shrinker invented. *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let resize (p : Gen.prog) id size =
  {
    p with
    Gen.arrays =
      List.map
        (fun (a : Gen.arr) -> if a.a_id = id then { a with size } else a)
        p.Gen.arrays;
  }

(* All one-step smaller programs, most aggressive first: removing whole
   operations (and with them, via [Gen.render]'s liveness, whole arrays
   and helpers) beats nudging sizes. *)
let candidates (p : Gen.prog) =
  let drop_ops =
    List.init (List.length p.Gen.ops) (fun i ->
        { p with Gen.ops = drop_nth p.Gen.ops i })
  in
  let drop_oob =
    match p.Gen.oob with
    | Some _ -> [ { p with Gen.oob = None } ]
    | None -> []
  in
  let shrink_sizes =
    List.concat_map
      (fun (a : Gen.arr) ->
        (if a.size > 4 then [ resize p a.a_id 4 ] else [])
        @ (if a.size / 2 > 4 then [ resize p a.a_id (a.size / 2) ] else []))
      p.Gen.arrays
  in
  let shrink_past =
    match p.Gen.oob with
    | Some o when o.Gen.past > 0 ->
      [ { p with Gen.oob = Some { o with Gen.past = 0 } } ]
    | _ -> []
  in
  drop_ops @ drop_oob @ shrink_sizes @ shrink_past

let minimize ~pred (p : Gen.prog) =
  if not (pred p) then p
  else
    let rec go p =
      (* [find_opt] evaluates [pred] lazily in candidate order, so this
         is first-improvement, not best-of-round. *)
      match List.find_opt pred (candidates p) with
      | Some smaller -> go smaller
      | None -> p
    in
    go p
