(* Crash artifacts for failing fleet cases.

   A failure dumps three files under [dir]: the generated source
   ([seed_N.c]), a lib/snapshot checkpoint of the machine the offending
   run left behind ([seed_N.snap], when a machine exists — a
   compile-time failure has none), and a metadata file ([seed_N.txt])
   whose [replay:] line is a ready-to-run `cashc --replay` command.
   The shrunk reproducer rides next to the original with a [?suffix]
   (conventionally ".min").

   Dumping must never mask the failure it is recording, so every
   filesystem (or snapshot) error only warns on stderr and returns the
   empty artifact list. *)

(* [Sys.mkdir] is single-level; a dump directory like
   "artifacts/fuzz/run1" has to be built parent-first. Racing creators
   are fine: an EEXIST surfacing as [Sys_error] is swallowed only when
   the path is indeed there afterwards. Any other failure — permission
   denied, a read-only filesystem — propagates to [dump_failure]'s
   warn-and-return handler instead of being silently absorbed here and
   resurfacing as a confusing write error three lines later. *)
let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Returns the paths written, [] if nothing could be. [run] is the
   machine the offending run left behind, paired with its compiled
   program (the checker already compiled it once — reuse it, don't
   recompile), when one exists. *)
let dump_failure ~dir ~seed ?(suffix = "") ~what ~backend ~src run =
  try
    mkdir_p dir;
    let base = Filename.concat dir (Printf.sprintf "seed_%d%s" seed suffix) in
    Core.write_file (base ^ ".c") src;
    let snapped =
      match run with
      | None -> false
      | Some (compiled, (r : Core.run)) ->
        let state = Core.state_of_run compiled r in
        Core.write_file (base ^ ".snap") (Buffer.contents (Core.save state));
        true
    in
    Core.write_file (base ^ ".txt")
      (Printf.sprintf
         "seed: %d\nproperty: %s\nbackend: %s\nreplay: cashc --compiler %s%s \
          %s.c\n"
         seed what
         (Core.backend_name backend)
         (Core.backend_name backend)
         (if snapped then Printf.sprintf " --replay %s.snap" base else "")
         base);
    [ base ^ ".c" ]
    @ (if snapped then [ base ^ ".snap" ] else [])
    @ [ base ^ ".txt" ]
  with e ->
    Printf.eprintf "fuzz dump failed for seed %d: %s\n%!" seed
      (Printexc.to_string e);
    []
