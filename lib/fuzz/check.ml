(* The differential property, as a reusable predicate.

   [check] runs one generated program through the five compilers
   (gcc unchecked / bcc software fat pointers / cash segmentation
   hardware / mpx bounds registers / cap capabilities) under a
   configurable engine matrix and judges the result:

   - in bounds: all five finish with identical output, under every
     engine, with identical output across engines — no checker may
     change observable semantics of a correct program;
   - out of bounds, loop shape: bcc, cash, mpx, and cap ALL report a
     bound violation while gcc never does;
   - out of bounds, straight-line shape: bcc, mpx, and cap report a
     bound violation (mpx and cap check every reference, in or out of
     loops); cash FINISHES with the baseline's (corrupted) output. That
     is the paper's §3.8 policy — only references inside loops are
     checked — and the fleet pins it as a {e known miss} ([Pass
     {known_miss = true}]) rather than reporting a divergence. If cash
     ever starts catching straight-line references, the pin fails
     loudly and the policy model here must be updated, not silently
     absorbed.

   Failures come back as a value ([Fail]) rather than an exception so
   the same function serves as the shrinking predicate: a candidate
   program "still fails" iff [check] on it is [Fail _].

   With [~plugins:true] every cash run carries a fresh sink with the
   shipped checker plugins attached ({!Checkers.attach_shipped}); any
   plugin violation is a failure in its own right — the fleet then
   cross-checks the simulated hardware itself, not just compiler
   agreement.

   [~force_fail:true] short-circuits the property into a failure on an
   otherwise healthy program: CI's dump-and-replay drill uses it to
   exercise the artifact path (and the shrinker, which under a
   constantly-failing predicate reduces the program to near-nothing)
   on demand. *)

type failure = {
  f_seed : int;
  f_what : string;  (* property leg, e.g. "oob/block" *)
  f_backend : Core.backend;
  f_message : string;
  f_src : string;
  (* The offending run and its compiled program, if the program got that
     far. Carrying the compilation alongside the run lets the dumper
     snapshot the machine without compiling the source a second time. *)
  f_run : (Core.compiled * Core.run) option;
}

type verdict = Pass of { known_miss : bool } | Fail of failure

exception Failed of failure

let status_name = function
  | Core.Finished -> "finished"
  | Core.Bound_violation m -> "bound_violation: " ^ m
  | Core.Crashed m -> "crashed: " ^ m

let is_bv = function Core.Bound_violation _ -> true | _ -> false

(* One engine per program: the superblock engine with chaining, the
   fleet's throughput configuration. *)
let fast_engines = [ ("block", Machine.Cpu.Block, Some true) ]

(* The full differential matrix of test/test_differential.ml: both fast
   engines on every seed — the block engine with chaining on AND off —
   with the reference oracle joining on every 7th seed. *)
let all_engines ~seed =
  [ ("predecode", Machine.Cpu.Predecoded, None);
    ("block", Machine.Cpu.Block, Some true);
    ("block-nochain", Machine.Cpu.Block, Some false) ]
  @ (if seed mod 7 = 0 then [ ("reference", Machine.Cpu.Reference, None) ]
     else [])

let fail ~seed ~what ~backend ~src ?run fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Failed
           {
             f_seed = seed;
             f_what = what;
             f_backend = backend;
             f_message = msg;
             f_src = src;
             f_run = run;
           }))
    fmt

(* Compile [src] once per backend per check, BEFORE the engine loop.
   Every engine leg then runs the same [compiled] value — same program
   identity, so the block engine's shared superblock cache binds the
   one closure set across legs instead of recompiling it.

   Deliberately NOT [Core.compile_cached]: fleet sources are distinct
   by construction, so the process-wide table never hits here — but it
   would pin every seed's program (and, transitively, its superblock
   closures) until an eviction sweep, promoting the whole stream into
   major-heap marking. Routing the fleet through the global cache was
   measured to cost 5–25% of check-phase throughput depending on the
   cache capacity; hoisting the compile out of the engine loop gives
   the same once-per-process guarantee with zero retention. *)
let compile_backend ~seed ~what backend src =
  match Core.compile backend src with
  | compiled -> compiled
  | exception (Failed _ as e) -> raise e
  | exception e ->
    fail ~seed ~what ~backend ~src "seed %d: %s under %s raised %s" seed what
      (Core.backend_name backend) (Printexc.to_string e)

(* Run an already-compiled program on one engine leg. Returns the
   (compiled, run) pair, so the failure value can carry the compiled
   program alongside the run (the dumper reuses it instead of
   recompiling). *)
let run_backend ~seed ~what ~engine ?chain ?trace backend compiled src =
  match (compiled, Core.run ~engine ?chain ?trace compiled) with
  | pair -> pair
  | exception (Failed _ as e) -> raise e
  | exception e ->
    fail ~seed ~what ~backend ~src "seed %d: %s under %s raised %s" seed what
      (Core.backend_name backend) (Printexc.to_string e)

(* A cash run, optionally with the shipped plugins watching the
   hardware event stream. Each run gets its own sink, so a violation
   names the exact program and engine leg that provoked it. *)
let run_cash ~plugins ~seed ~what ~engine ?chain compiled src =
  if not plugins then
    run_backend ~seed ~what ~engine ?chain Core.cash compiled src
  else begin
    let sink = Trace.create () in
    Checkers.attach_shipped sink;
    let pair =
      run_backend ~seed ~what ~engine ?chain ~trace:sink Core.cash compiled
        src
    in
    Trace.finish_plugins sink;
    (match Checkers.shipped_violations sink with
     | [] -> ()
     | (checker, msg) :: _ as vs ->
       fail ~seed ~what ~backend:Core.cash ~src ~run:pair
         "seed %d: %d plugin violation(s) under %s, first: [%s] %s" seed
         (List.length vs) what checker msg);
    pair
  end

(* A leg's runs are dead once its comparisons pass: recycle their
   physical-memory buffers (the eager 1 MiB stack map makes each one a
   multi-megabyte zeroed allocation) instead of leaving thousands of
   them to the major GC per sweep. Failure paths raise before reaching
   this, so a [Failed] value's carried run keeps its memory intact for
   the snapshot dumper. *)
let release_runs runs =
  List.iter
    (fun (r : Core.run) ->
      Machine.Phys_mem.release (Osim.Process.phys r.Core.process))
    runs

let check_in_bounds ~engines ~plugins ~seed src =
  let first_output = ref None in
  let what = "in-bounds" in
  let gc = compile_backend ~seed ~what Core.gcc src in
  let bc = compile_backend ~seed ~what Core.bcc src in
  let cc = compile_backend ~seed ~what Core.cash src in
  let mc = compile_backend ~seed ~what Core.mpx src in
  let kc = compile_backend ~seed ~what Core.cap src in
  List.iter
    (fun (ename, engine, chain) ->
      let what = "in-bounds/" ^ ename in
      let (_, g) as gp =
        run_backend ~seed ~what ~engine ?chain Core.gcc gc src
      in
      let (_, b) as bp =
        run_backend ~seed ~what ~engine ?chain Core.bcc bc src
      in
      let (_, c) as cp = run_cash ~plugins ~seed ~what ~engine ?chain cc src in
      let (_, m) as mp =
        run_backend ~seed ~what ~engine ?chain Core.mpx mc src
      in
      let (_, k) as kp =
        run_backend ~seed ~what ~engine ?chain Core.cap kc src
      in
      List.iter
        (fun (name, backend, ((_, r) as pair)) ->
          if r.Core.status <> Core.Finished then
            fail ~seed ~what ~backend ~src ~run:pair
              "seed %d: %s did not finish under %s: %s" seed name ename
              (status_name r.Core.status))
        [ ("gcc", Core.gcc, gp); ("bcc", Core.bcc, bp);
          ("cash", Core.cash, cp); ("mpx", Core.mpx, mp);
          ("cap", Core.cap, kp) ];
      List.iter
        (fun (name, backend, ((_, r) as pair)) ->
          if r.Core.output <> g.Core.output then
            fail ~seed ~what ~backend ~src ~run:pair
              "seed %d: %s output %S <> gcc output %S (%s)" seed name
              r.Core.output g.Core.output ename)
        [ ("bcc", Core.bcc, bp); ("cash", Core.cash, cp);
          ("mpx", Core.mpx, mp); ("cap", Core.cap, kp) ];
      (match !first_output with
       | None -> first_output := Some g.Core.output
       | Some out ->
         if g.Core.output <> out then
           fail ~seed ~what ~backend:Core.gcc ~src ~run:gp
             "seed %d: output differs across engines at %s" seed ename);
      release_runs [ g; b; c; m; k ])
    engines

let check_oob ~engines ~plugins ~seed prog src =
  let direct = Gen.oob_is_direct prog.Gen.oob in
  let what = if direct then "oob-direct" else "oob" in
  let gc = compile_backend ~seed ~what Core.gcc src in
  let bc = compile_backend ~seed ~what Core.bcc src in
  let cc = compile_backend ~seed ~what Core.cash src in
  let mc = compile_backend ~seed ~what Core.mpx src in
  let kc = compile_backend ~seed ~what Core.cap src in
  List.iter
    (fun (ename, engine, chain) ->
      let what = (if direct then "oob-direct/" else "oob/") ^ ename in
      let (_, g) as gp =
        run_backend ~seed ~what ~engine ?chain Core.gcc gc src
      in
      let (_, b) as bp =
        run_backend ~seed ~what ~engine ?chain Core.bcc bc src
      in
      let (_, c) as cp = run_cash ~plugins ~seed ~what ~engine ?chain cc src in
      let (_, m) as mp =
        run_backend ~seed ~what ~engine ?chain Core.mpx mc src
      in
      let (_, k) as kp =
        run_backend ~seed ~what ~engine ?chain Core.cap kc src
      in
      if not (is_bv b.Core.status) then
        fail ~seed ~what ~backend:Core.bcc ~src ~run:bp
          "seed %d: bcc missed the overrun under %s (%s)" seed ename
          (status_name b.Core.status);
      (* Unlike cash's loop-only policy, the MPX and capability
         backends check every reference — BOTH overrun shapes must
         fault. *)
      if not (is_bv m.Core.status) then
        fail ~seed ~what ~backend:Core.mpx ~src ~run:mp
          "seed %d: mpx missed the overrun under %s (%s)" seed ename
          (status_name m.Core.status);
      if not (is_bv k.Core.status) then
        fail ~seed ~what ~backend:Core.cap ~src ~run:kp
          "seed %d: cap missed the overrun under %s (%s)" seed ename
          (status_name k.Core.status);
      if is_bv g.Core.status then
        fail ~seed ~what ~backend:Core.gcc ~src ~run:gp
          "seed %d: gcc reported a bound violation it cannot detect under %s \
           (%s)"
          seed ename
          (status_name g.Core.status);
      if direct then begin
        (* The known miss, pinned: straight-line references are
           unchecked by policy, so like the baseline cash runs straight
           through the overrun. Output equality with gcc is NOT part of
           the pin — an out-of-bounds read has no defined value and the
           two backends lay out data differently, so each corrupts (or
           reads) its own neighbour. *)
        if is_bv c.Core.status then
          fail ~seed ~what ~backend:Core.cash ~src ~run:cp
            "seed %d: cash caught a straight-line overrun under %s — §3.8 \
             loop-only policy says it cannot; update the policy model"
            seed ename;
        if c.Core.status <> Core.Finished then
          fail ~seed ~what ~backend:Core.cash ~src ~run:cp
            "seed %d: cash did not finish on a straight-line overrun under \
             %s (%s)"
            seed ename
            (status_name c.Core.status)
      end
      else if not (is_bv c.Core.status) then
        fail ~seed ~what ~backend:Core.cash ~src ~run:cp
          "seed %d: cash missed the overrun under %s (%s)" seed ename
          (status_name c.Core.status);
      release_runs [ g; b; c; m; k ])
    engines

let check ?(engines = fast_engines) ?(plugins = false) ?(force_fail = false)
    ~seed prog =
  let src = Gen.render prog in
  try
    if force_fail then begin
      let what = "in-bounds/forced" in
      let run =
        match Core.compile_cached Core.cash src with
        | exception _ -> None
        | compiled -> (
          match Core.run ~engine:Machine.Cpu.Predecoded compiled with
          | r -> Some (compiled, r)
          | exception _ -> None)
      in
      fail ~seed ~what ~backend:Core.cash ~src ?run
        "seed %d: forced failure (CASH_DIFF_FORCE_FAIL)" seed
    end;
    (match prog.Gen.oob with
     | None -> check_in_bounds ~engines ~plugins ~seed src
     | Some _ -> check_oob ~engines ~plugins ~seed prog src);
    Pass { known_miss = Gen.oob_is_direct prog.Gen.oob }
  with Failed f -> Fail f

let failed verdict = match verdict with Fail _ -> true | Pass _ -> false
