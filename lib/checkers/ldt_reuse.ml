(* Dangling-LDT-slot reuse detector.

   Cash gives every live array a descriptor in the LDT and clears the
   slot when the array is freed; a segment register loaded from a
   cleared slot is the hardware-level image of a dangling pointer
   dereference (the very next access would fault on the invalid
   descriptor — or worse, on a RECYCLED descriptor now bounding someone
   else's array, it would NOT fault and the use-after-free reads the
   wrong object silently). The plugin replays the LDT lifecycle from
   [Ldt_update] events:

   - [cleared = true]  -> the slot is dangling;
   - [cleared = false] -> the slot is live again (legitimate reuse);
   - a [Segreg_load] whose selector has TI = 1 (an LDT selector,
     bit 2 set) and whose index is currently dangling is a violation.

   Slots never seen in an [Ldt_update] (e.g. set up by the loader
   before tracing was attached) are left unjudged. *)

type slot = Live | Dangling

type state = {
  slots : (int, slot) Hashtbl.t;
  mutable ldt_loads : int;
  mutable clears : int;
  mutable sets : int;
  mutable reuses : int;
}

type Trace.plugin_state += S of state

let get = function S s -> s | _ -> assert false

let name = "ldt_reuse"

let on_event sink st ev =
  let s = get st in
  match ev with
  | Trace.Ldt_update { index; cleared; _ } ->
    if cleared then begin
      s.clears <- s.clears + 1;
      Hashtbl.replace s.slots index Dangling
    end
    else begin
      s.sets <- s.sets + 1;
      Hashtbl.replace s.slots index Live
    end
  | Trace.Segreg_load { reg; selector } when selector land 4 <> 0 ->
    s.ldt_loads <- s.ldt_loads + 1;
    let index = selector lsr 3 in
    (match Hashtbl.find_opt s.slots index with
     | Some Dangling ->
       s.reuses <- s.reuses + 1;
       Trace.violation sink ~checker:name
         (Printf.sprintf
            "%s loaded selector 0x%04x from LDT slot %d after it was cleared"
            reg selector index)
     | Some Live | None -> ())
  | _ -> ()

let at_finish _sink _st = ()

let merge ~into src =
  let i = get into and s = get src in
  (* Slot states from different jobs describe different machines; the
     union (src wins on collision) keeps the table meaningful for the
     single-machine case and harmless for aggregates — violations were
     already recorded at emission time on the worker sink. *)
  Hashtbl.iter (fun k v -> Hashtbl.replace i.slots k v) s.slots;
  i.ldt_loads <- i.ldt_loads + s.ldt_loads;
  i.clears <- i.clears + s.clears;
  i.sets <- i.sets + s.sets;
  i.reuses <- i.reuses + s.reuses

let to_json st =
  let s = get st in
  Trace.Json.Obj
    [ ("ldt_selector_loads", Trace.Json.Int s.ldt_loads);
      ("slot_sets", Trace.Json.Int s.sets);
      ("slot_clears", Trace.Json.Int s.clears);
      ("dangling_reuses", Trace.Json.Int s.reuses) ]

let spec : Trace.Plugin.spec =
  {
    p_name = name;
    p_doc =
      "no segment register is loaded from an LDT slot after the slot was \
       cleared";
    p_init =
      (fun () ->
        S
          {
            slots = Hashtbl.create 61;
            ldt_loads = 0;
            clears = 0;
            sets = 0;
            reuses = 0;
          });
    p_on_event = on_event;
    p_at_finish = at_finish;
    p_merge = merge;
    p_to_json = to_json;
  }
