(* Bounds-precision cross-check.

   The paper's central claim is that a segment-limit check is *precise*:
   the moment an access fails the check, the processor faults — nothing
   retires in between, and the run cannot continue past it un-faulted.
   This plugin pins that as an event-stream invariant:

   - a [Limit_check ~ok:false] must be followed IMMEDIATELY by a
     [Fault] event (nothing — not even a TLB probe — may intervene:
     a failed check never reaches translation);
   - that fault must be a protection fault (#GP or #SS), the two
     classes the segmentation hardware reports limit violations
     through;
   - a stream may not end with a failed check still pending.

   The one-per-fault discipline is pinned elsewhere (test_trace.ml);
   here we pin the pairing. Stats: checks seen, failures, and how many
   failures the hardware stopped. *)

type state = {
  mutable pending : bool;  (* failed check seen, fault must be next *)
  mutable passes : int;
  mutable fails : int;
  mutable stopped : int;   (* fails answered by #GP/#SS *)
}

type Trace.plugin_state += S of state

let get = function S s -> s | _ -> assert false

let name = "bounds_precision"

let on_event sink st ev =
  let s = get st in
  match ev with
  | Trace.Limit_check { ok = true; _ } ->
    if s.pending then begin
      Trace.violation sink ~checker:name
        "limit check executed after a failed check with no intervening fault";
      s.pending <- false
    end;
    s.passes <- s.passes + 1
  | Trace.Limit_check { ok = false; seg; offset; size; _ } ->
    if s.pending then
      Trace.violation sink ~checker:name
        "second failed limit check with no intervening fault";
    s.fails <- s.fails + 1;
    s.pending <- true;
    ignore (seg, offset, size)
  | Trace.Fault { cls = (`Gp | `Ss); _ } when s.pending ->
    s.stopped <- s.stopped + 1;
    s.pending <- false
  | Trace.Fault { cls; _ } when s.pending ->
    let cls_name =
      match cls with
      | `Pf -> "#PF" | `Np -> "#NP" | `Ud -> "#UD" | `Br -> "#BR"
      | `Gp | `Ss -> assert false
    in
    Trace.violation sink ~checker:name
      (Printf.sprintf
         "failed limit check resolved by %s, not a protection fault" cls_name);
    s.pending <- false
  | _ ->
    if s.pending then begin
      Trace.violation sink ~checker:name
        "event between a failed limit check and its fault";
      s.pending <- false
    end

let at_finish sink st =
  let s = get st in
  if s.pending then begin
    Trace.violation sink ~checker:name
      "stream ended with a failed limit check and no fault";
    s.pending <- false
  end

let merge ~into src =
  let i = get into and s = get src in
  i.passes <- i.passes + s.passes;
  i.fails <- i.fails + s.fails;
  i.stopped <- i.stopped + s.stopped;
  i.pending <- i.pending || s.pending

let to_json st =
  let s = get st in
  Trace.Json.Obj
    [ ("checks_passed", Trace.Json.Int s.passes);
      ("checks_failed", Trace.Json.Int s.fails);
      ("stopped_by_fault", Trace.Json.Int s.stopped) ]

let spec : Trace.Plugin.spec =
  {
    p_name = name;
    p_doc =
      "every failed segment-limit check is immediately answered by a \
       #GP/#SS fault";
    p_init = (fun () -> S { pending = false; passes = 0; fails = 0; stopped = 0 });
    p_on_event = on_event;
    p_at_finish = at_finish;
    p_merge = merge;
    p_to_json = to_json;
  }
