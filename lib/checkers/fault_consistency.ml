(* Fault/counter consistency cross-check.

   The sink's per-kind counters and the plugin layer see the same
   stream through different code paths (counters are bumped inline in
   [Trace.emit]; plugins are fed afterwards; [Trace.merge_into] sums
   the two independently). This plugin recounts every event kind for
   itself and, at finish, diffs its books against the sink's — any
   drift means an emit/merge path bumped one side and not the other.

   On top of the per-kind identity it pins the aggregate fault
   discipline the paper's precision argument rests on:

   - every failed limit check faults, so
       fails <= #GP + #SS faults
     (protection faults also arise from non-limit causes — null
     selector loads, privilege, not-writable — so equality is not
     required);
   - an evicting TLB miss bumps both the miss and evict counters, so
       evicts <= misses. *)

type state = {
  counts : (string, int ref) Hashtbl.t;  (* kind_name -> events seen *)
}

type Trace.plugin_state += S of state

let get = function S s -> s | _ -> assert false

let name = "fault_consistency"

let bump s kind =
  let key = Trace.kind_name kind in
  match Hashtbl.find_opt s.counts key with
  | Some r -> incr r
  | None -> Hashtbl.add s.counts key (ref 1)

let seen s kind =
  match Hashtbl.find_opt s.counts (Trace.kind_name kind) with
  | Some r -> !r
  | None -> 0

let on_event _sink st ev =
  let s = get st in
  bump s (Trace.kind_of_event ev);
  match ev with
  | Trace.Tlb_miss { evicted = true; _ } -> bump s Trace.K_tlb_evict
  | _ -> ()

let at_finish sink st =
  let s = get st in
  List.iter
    (fun kind ->
      let own = seen s kind and counter = Trace.count sink kind in
      if own <> counter then
        Trace.violation sink ~checker:name
          (Printf.sprintf "counter %s = %d but %d events were delivered"
             (Trace.kind_name kind) counter own))
    Trace.all_kinds;
  let fails = seen s Trace.K_limit_check_fail in
  let prot = seen s Trace.K_fault_gp + seen s Trace.K_fault_ss in
  if fails > prot then
    Trace.violation sink ~checker:name
      (Printf.sprintf
         "%d failed limit checks but only %d protection faults" fails prot);
  let evicts = seen s Trace.K_tlb_evict
  and misses = seen s Trace.K_tlb_miss in
  if evicts > misses then
    Trace.violation sink ~checker:name
      (Printf.sprintf "%d TLB evictions exceed %d misses" evicts misses)

let merge ~into src =
  let i = get into and s = get src in
  Hashtbl.iter
    (fun k r ->
      match Hashtbl.find_opt i.counts k with
      | Some ri -> ri := !ri + !r
      | None -> Hashtbl.add i.counts k (ref !r))
    s.counts

let to_json st =
  let s = get st in
  let entries =
    Hashtbl.fold (fun k r acc -> (k, Trace.Json.Int !r) :: acc) s.counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Trace.Json.Obj [ ("events_seen", Trace.Json.Obj entries) ]

let spec : Trace.Plugin.spec =
  {
    p_name = name;
    p_doc =
      "sink counters match delivered events; failed checks never exceed \
       protection faults";
    p_init = (fun () -> S { counts = Hashtbl.create 31 });
    p_on_event = on_event;
    p_at_finish = at_finish;
    p_merge = merge;
    p_to_json = to_json;
  }
