(* Stack-smash detector.

   §5 of the paper argues segment limits stop stack-smashing attacks:
   an overrun of a stack-resident buffer cannot reach the saved return
   address, because the buffer's segment ends before it. This plugin
   watches the stack from the event stream:

   - every [Limit_check] through SS grows the observed stack window
     (linear [base+offset .. base+offset+size)), so the plugin learns
     where the live stack is without any OS cooperation;
   - a FAILING WRITE check whose segment base lies inside that window
     is a smash attempt: an overrun of a stack-resident object heading
     for adjacent frames. The hardware must answer it with a
     protection fault (#GP through the object's segment, #SS through
     SS itself) — a smash attempt the machine survives un-faulted is a
     violation;
   - stats: stack writes, the window extent, attempts seen/stopped.

   A failing write through a DATA-region segment is deliberately out of
   scope (that is bounds_precision's generic pairing); this plugin's
   value is the classification: it tells a smash attempt apart from an
   ordinary heap/global overrun by where the segment lives. *)

type state = {
  mutable ss_lo : int;       (* observed stack window, linear [lo, hi) *)
  mutable ss_hi : int;       (* lo > hi <=> nothing observed yet *)
  mutable ss_writes : int;
  mutable pending : bool;    (* smash attempt awaiting its fault *)
  mutable attempts : int;
  mutable stopped : int;
}

type Trace.plugin_state += S of state

let get = function S s -> s | _ -> assert false

let name = "stack_smash"

let in_window s addr = s.ss_lo <= s.ss_hi && addr >= s.ss_lo && addr <= s.ss_hi

let on_event sink st ev =
  let s = get st in
  match ev with
  | Trace.Limit_check { seg = "SS"; base; offset; size; write; ok } ->
    let lo = base + offset in
    let hi = lo + size in
    if s.ss_lo > s.ss_hi then begin
      s.ss_lo <- lo;
      s.ss_hi <- hi
    end
    else begin
      if lo < s.ss_lo then s.ss_lo <- lo;
      if hi > s.ss_hi then s.ss_hi <- hi
    end;
    if write then s.ss_writes <- s.ss_writes + 1;
    if (not ok) && write then begin
      s.attempts <- s.attempts + 1;
      s.pending <- true
    end
  | Trace.Limit_check { base; write = true; ok = false; _ }
    when in_window s base ->
    (* overrun of a stack-resident object through its own segment *)
    s.attempts <- s.attempts + 1;
    s.pending <- true
  | Trace.Fault { cls = (`Gp | `Ss); _ } when s.pending ->
    s.stopped <- s.stopped + 1;
    s.pending <- false
  | _ ->
    if s.pending then begin
      Trace.violation sink ~checker:name
        "stack-smash attempt not stopped by a protection fault";
      s.pending <- false
    end

let at_finish sink st =
  let s = get st in
  if s.pending then begin
    Trace.violation sink ~checker:name
      "stream ended with an unstopped stack-smash attempt";
    s.pending <- false
  end

let merge ~into src =
  let i = get into and s = get src in
  if s.ss_lo <= s.ss_hi then
    if i.ss_lo > i.ss_hi then begin
      i.ss_lo <- s.ss_lo;
      i.ss_hi <- s.ss_hi
    end
    else begin
      if s.ss_lo < i.ss_lo then i.ss_lo <- s.ss_lo;
      if s.ss_hi > i.ss_hi then i.ss_hi <- s.ss_hi
    end;
  i.ss_writes <- i.ss_writes + s.ss_writes;
  i.attempts <- i.attempts + s.attempts;
  i.stopped <- i.stopped + s.stopped;
  i.pending <- i.pending || s.pending

let to_json st =
  let s = get st in
  Trace.Json.Obj
    [ ("stack_writes", Trace.Json.Int s.ss_writes);
      ( "stack_window_bytes",
        Trace.Json.Int (if s.ss_lo > s.ss_hi then 0 else s.ss_hi - s.ss_lo) );
      ("smash_attempts", Trace.Json.Int s.attempts);
      ("smash_stopped", Trace.Json.Int s.stopped) ]

let spec : Trace.Plugin.spec =
  {
    p_name = name;
    p_doc =
      "failing writes into the live stack region must be stopped by a \
       protection fault";
    p_init =
      (fun () ->
        S
          {
            ss_lo = 1;
            ss_hi = 0;
            ss_writes = 0;
            pending = false;
            attempts = 0;
            stopped = 0;
          });
    p_on_event = on_event;
    p_at_finish = at_finish;
    p_merge = merge;
    p_to_json = to_json;
  }
