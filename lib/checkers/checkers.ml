(* The shipped checker plugins, Checkbochs-style: one hardware-level
   property per small module, each a [Trace.Plugin.spec] over the typed
   event stream. Attach them all with [attach_shipped], or pick one by
   name through the registry ([Trace.Plugin.find]) after [all] has been
   forced (referencing this module registers every shipped spec). *)

module Bounds_precision = Bounds_precision
module Stack_smash = Stack_smash
module Ldt_reuse = Ldt_reuse
module Fault_consistency = Fault_consistency

let all : Trace.Plugin.spec list =
  [
    Bounds_precision.spec;
    Stack_smash.spec;
    Ldt_reuse.spec;
    Fault_consistency.spec;
  ]

let () = List.iter Trace.Plugin.register all

(* Instantiate every shipped plugin on [sink]. *)
let attach_shipped sink = List.iter (Trace.attach sink) all

(* Total violations across a sink's log that were recorded by shipped
   plugins (other checkers' violations are not counted). *)
let shipped_violations sink =
  let names = List.map (fun (s : Trace.Plugin.spec) -> s.p_name) all in
  List.filter (fun (checker, _) -> List.mem checker names)
    (Trace.violations sink)
