(** A miniature C library implemented as host routines, reached via
    [Callext]: malloc/free (size-class free lists over a bump heap),
    print_* (into a per-process buffer the differential tests compare),
    a deterministic LCG rand, and scalar math. Each routine charges a
    fixed cycle cost, identical across compilers, standing in for the
    library code we do not simulate instruction-by-instruction. *)

type t

val create : mmu:Seghw.Mmu.t -> t

(** Everything the process printed. *)
val output : t -> string

(** Peak heap footprint, bytes. *)
val peak_heap : t -> int

(** Electric Fence mode (the §2 comparator): when enabled, [malloc]
    end-aligns every allocation to a page boundary and leaves the next
    page unmapped, so overruns page-fault at the offending instruction;
    [free] unmaps the payload, catching use-after-free. Zero
    per-reference cost; page-granular virtual-memory cost. *)
val set_guard_malloc : t -> bool -> unit

(** Virtual memory consumed by guard-mode allocations (payload pages plus
    one fence page each). *)
val guard_vm_bytes : t -> int

val malloc_cycles : int
val free_cycles : int
val print_cycles : int
val math_cycles : int
val rand_cycles : int

(** Allocate [size] bytes (16-byte size classes); maps the pages. *)
val alloc : t -> int -> int

(** Release an allocation. Raises [#GP] on unknown or double frees. *)
val release : t -> int -> unit

(** The deterministic LCG behind [rand()]. *)
val next_rand : t -> int

(** All externals to register on a CPU, including the
    ["bounds_violation"] target of software checks (raises [#BR]) and
    the ["server_ready"] accept-loop marker (a no-op by default; the
    snapshot harness overrides it to find the warm-start point). *)
val externals : t -> (string * (Machine.Cpu.t -> unit)) list

(** {2 Snapshot support}

    The allocator and I/O state a checkpoint must carry. Hashtable
    contents are listed in sorted key order (byte-stable encodings);
    free-list order within a size class is preserved verbatim — the
    lists are LIFO stacks, and allocations replayed after a restore
    must pop the same addresses the uninterrupted run would. *)
type persisted = {
  p_brk : int;
  p_rand_state : int;
  p_bytes_allocated : int;
  p_peak_heap : int;
  p_guard_malloc : bool;
  p_guard_vm_bytes : int;
  p_output : string;
  p_free_lists : (int * int list) list;  (** sorted by rounded size *)
  p_alloc_sizes : (int * int) list;      (** sorted by address *)
}

val export_state : t -> persisted
val import_state : t -> persisted -> unit
