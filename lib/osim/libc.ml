(* A miniature C library implemented as host routines.

   The simulated programs call these through `Callext`; each routine reads
   its cdecl arguments from the simulated stack, performs the work on the
   host, charges a fixed cycle cost that stands in for the library code we
   do not simulate instruction-by-instruction, and writes results back into
   simulated registers/memory.

   The cycle charges are identical across the three compilers, so they
   cancel out of the relative overheads the experiments report. All output
   goes to a per-process buffer, which the differential tests compare
   across backends.

   malloc/free: a size-class free-list allocator over a bump heap. The
   allocation size is tracked host-side; BCC needs object bounds at the
   call site, so malloc additionally returns base in ECX and one-past-end
   in EDX (the BCC backend consumes them; GCC ignores them). *)

type t = {
  mmu : Seghw.Mmu.t;
  mutable brk : int;
  free_lists : (int, int list ref) Hashtbl.t; (* rounded size -> addrs *)
  alloc_sizes : (int, int) Hashtbl.t;         (* addr -> requested size *)
  output : Buffer.t;
  mutable rand_state : int;
  mutable bytes_allocated : int;
  mutable peak_heap : int;
  mutable guard_malloc : bool;
      (* Electric Fence mode (§2 of the paper): every allocation is
         end-aligned to a page boundary with the following page left
         unmapped, so any overrun page-faults at the offending
         instruction; freed memory is unmapped, catching use-after-free.
         Zero per-reference cost, page-granular virtual-memory cost. *)
  mutable guard_vm_bytes : int; (* VM consumed by guard-mode allocations *)
}

let create ~mmu =
  {
    mmu;
    brk = Layout.heap_base;
    free_lists = Hashtbl.create 31;
    alloc_sizes = Hashtbl.create 255;
    output = Buffer.create 4096;
    rand_state = 123456789;
    bytes_allocated = 0;
    peak_heap = 0;
    guard_malloc = false;
    guard_vm_bytes = 0;
  }

let output t = Buffer.contents t.output
let peak_heap t = t.peak_heap
let set_guard_malloc t v = t.guard_malloc <- v
let guard_vm_bytes t = t.guard_vm_bytes

(* Cycle charges for the routines we do not simulate. *)
let malloc_cycles = 60
let free_cycles = 40
let print_cycles = 150
let math_cycles = 80
let rand_cycles = 12

let round_size size = if size <= 0 then 16 else (size + 15) land lnot 15

let page = 4096
let round_pages size = (max size 1 + page - 1) / page * page

(* Electric Fence allocation: payload pages mapped so the buffer's END
   coincides with a page end; the next page stays unmapped (the fence). *)
let guard_alloc t size =
  let payload = round_pages size in
  let region = t.brk in
  t.brk <- t.brk + payload + page; (* payload pages + unmapped guard *)
  Seghw.Mmu.map_range t.mmu ~linear:region ~size:payload ~writable:true;
  let addr = region + payload - max size 1 in
  Hashtbl.replace t.alloc_sizes addr size;
  t.guard_vm_bytes <- t.guard_vm_bytes + payload + page;
  if t.brk - Layout.heap_base > t.peak_heap then
    t.peak_heap <- t.brk - Layout.heap_base;
  addr

let guard_release t addr size =
  (* unmap the payload so use-after-free faults too *)
  let payload = round_pages size in
  let region_start = addr + max size 1 - payload in
  let first = region_start / page and last = (region_start + payload - 1) / page in
  for p_ = first to last do
    Seghw.Paging.unmap_page (Seghw.Mmu.paging t.mmu) ~linear:(p_ * page);
    Seghw.Tlb.invalidate_page (Seghw.Mmu.tlb t.mmu) ~page:p_
  done

let alloc t size =
  if t.guard_malloc then guard_alloc t size
  else begin
  let rounded = round_size size in
  let addr =
    match Hashtbl.find_opt t.free_lists rounded with
    | Some ({ contents = addr :: rest } as l) ->
      l := rest;
      addr
    | _ ->
      let addr = t.brk in
      t.brk <- t.brk + rounded;
      Seghw.Mmu.map_range t.mmu ~linear:addr ~size:rounded ~writable:true;
      addr
  in
  Hashtbl.replace t.alloc_sizes addr size;
  t.bytes_allocated <- t.bytes_allocated + rounded;
  if t.brk - Layout.heap_base > t.peak_heap then
    t.peak_heap <- t.brk - Layout.heap_base;
  addr
  end

let release t addr =
  match Hashtbl.find_opt t.alloc_sizes addr with
  | None -> Seghw.Fault.gp (Printf.sprintf "free of unallocated 0x%x" addr)
  | Some size ->
    Hashtbl.remove t.alloc_sizes addr;
    if t.guard_malloc then guard_release t addr size
    else begin
      let rounded = round_size size in
      match Hashtbl.find_opt t.free_lists rounded with
      | Some l -> l := addr :: !l
      | None -> Hashtbl.add t.free_lists rounded (ref [ addr ])
    end

(* Deterministic LCG so workload inputs are reproducible across backends
   and runs (no wall-clock anywhere). *)
let next_rand t =
  t.rand_state <- ((t.rand_state * 1103515245) + 12345) land 0x3FFFFFFF;
  t.rand_state

(* --- snapshot support --------------------------------------------------- *)

(* The allocator and I/O state a checkpoint must carry. Hashtable
   contents are listed in sorted key order so the snapshot encoding is
   byte-stable; free-list order *within* a size class is preserved
   verbatim (the lists are LIFO stacks, and replaying allocations after
   a restore must pop the same addresses the uninterrupted run would). *)
type persisted = {
  p_brk : int;
  p_rand_state : int;
  p_bytes_allocated : int;
  p_peak_heap : int;
  p_guard_malloc : bool;
  p_guard_vm_bytes : int;
  p_output : string;
  p_free_lists : (int * int list) list; (* sorted by rounded size *)
  p_alloc_sizes : (int * int) list;     (* sorted by address *)
}

let export_state t =
  {
    p_brk = t.brk;
    p_rand_state = t.rand_state;
    p_bytes_allocated = t.bytes_allocated;
    p_peak_heap = t.peak_heap;
    p_guard_malloc = t.guard_malloc;
    p_guard_vm_bytes = t.guard_vm_bytes;
    p_output = Buffer.contents t.output;
    p_free_lists =
      Hashtbl.fold (fun size l acc -> (size, !l) :: acc) t.free_lists []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    p_alloc_sizes =
      Hashtbl.fold (fun addr size acc -> (addr, size) :: acc) t.alloc_sizes []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let import_state t (p : persisted) =
  t.brk <- p.p_brk;
  t.rand_state <- p.p_rand_state;
  t.bytes_allocated <- p.p_bytes_allocated;
  t.peak_heap <- p.p_peak_heap;
  t.guard_malloc <- p.p_guard_malloc;
  t.guard_vm_bytes <- p.p_guard_vm_bytes;
  Buffer.clear t.output;
  Buffer.add_string t.output p.p_output;
  Hashtbl.reset t.free_lists;
  List.iter (fun (size, l) -> Hashtbl.add t.free_lists size (ref l))
    p.p_free_lists;
  Hashtbl.reset t.alloc_sizes;
  List.iter (fun (addr, size) -> Hashtbl.add t.alloc_sizes addr size)
    p.p_alloc_sizes

let externals t =
  let open Machine in
  let charge cpu n = Cpu.add_cycles cpu n in
  [
    ( "malloc",
      fun cpu ->
        charge cpu malloc_cycles;
        let size = Cpu.arg_int cpu 0 in
        let addr = alloc t size in
        Cpu.return_int cpu addr;
        (* bounds for fat-pointer backends *)
        Registers.set (Cpu.regs cpu) Registers.ECX addr;
        Registers.set (Cpu.regs cpu) Registers.EDX (addr + size) );
    ( "bounds_violation",
      fun _cpu ->
        (* Target of the software bound-check failure branch (BCC checks
           and Cash's software fallback). Raises the same class of fault
           the BOUND instruction would. *)
        Seghw.Fault.br "software bound check failed" );
    ( "free",
      fun cpu ->
        charge cpu free_cycles;
        let addr = Cpu.arg_int cpu 0 in
        release t addr );
    ( "print_int",
      fun cpu ->
        charge cpu print_cycles;
        Buffer.add_string t.output
          (string_of_int (Registers.to_signed (Cpu.arg_int cpu 0)));
        Buffer.add_char t.output '\n' );
    ( "print_float",
      fun cpu ->
        charge cpu print_cycles;
        Buffer.add_string t.output
          (Printf.sprintf "%.6f\n" (Cpu.arg_float cpu 0)) );
    ( "print_char",
      fun cpu ->
        charge cpu print_cycles;
        Buffer.add_char t.output (Char.chr (Cpu.arg_int cpu 0 land 0xFF)) );
    ( "server_ready",
      fun _cpu ->
        (* Marker the network servers call between initialisation and the
           request-handling section — the simulated accept(2) boundary.
           A no-op in a normal run (the Callext instruction itself is
           charged by the cost model, identically across backends, so it
           cancels out of every relative penalty); the snapshot harness
           overrides this external to detect the warm-start point. *)
        () );
    ( "rand",
      fun cpu ->
        charge cpu rand_cycles;
        Cpu.return_int cpu (next_rand t land 0x7FFF) );
    ( "srand",
      fun cpu ->
        charge cpu rand_cycles;
        t.rand_state <- Cpu.arg_int cpu 0 );
    ("sin", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu (sin (Cpu.arg_float cpu 0)));
    ("cos", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu (cos (Cpu.arg_float cpu 0)));
    ("exp", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu (exp (Cpu.arg_float cpu 0)));
    ("log", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu (log (Cpu.arg_float cpu 0)));
    ("atan", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu (atan (Cpu.arg_float cpu 0)));
    ("fabs", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu (Float.abs (Cpu.arg_float cpu 0)));
    ("floor", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu (floor (Cpu.arg_float cpu 0)));
    ("pow", fun cpu -> charge cpu math_cycles;
      Cpu.return_float cpu
        (Float.pow (Cpu.arg_float cpu 0) (Cpu.arg_float cpu 2)));
  ]
