(** The simulated operating system kernel: the GDT with Linux's flat
    segment layout, and the two LDT-modification facilities of §3.6 —
    stock [modify_ldt] via `int 0x80` (781 cycles) and Cash's
    [cash_modify_ldt] via a call gate in LDT entry 0 (253 cycles) —
    with the §3.8 security invariants (no call gates or privileged
    segments creatable from user space, entry 0 untouchable). *)

type stats = {
  mutable modify_ldt_calls : int;
  mutable cash_modify_ldt_calls : int;
  mutable descriptors_written : int;
  mutable descriptors_cleared : int;
}

type t

(** Fixed GDT layout, mirroring Linux's. *)
val kernel_code_index : int

val kernel_data_index : int
val user_code_index : int
val user_data_index : int

val create : ?costs:Machine.Cost_model.t -> unit -> t
val gdt : t -> Seghw.Descriptor_table.t
val costs : t -> Machine.Cost_model.t
val stats : t -> stats

(** Global cycle clock, advanced by the scheduler as processes run —
    the timestamp source for Table 8's fork accounting. *)
val clock : t -> int

val advance_clock : t -> int -> unit
val fresh_pid : t -> int

(** Snapshot support: the kernel's mutable state (pid counter, clock,
    and the four LDT-path statistics), minus the GDT — its fixed flat
    layout is recreated by {!create}, and any further entries travel in
    the snapshot's descriptor-table section. *)
type persisted = {
  p_next_pid : int;
  p_clock : int;
  p_modify_ldt_calls : int;
  p_cash_modify_ldt_calls : int;
  p_descriptors_written : int;
  p_descriptors_cleared : int;
}

val export_state : t -> persisted
val import_state : t -> persisted -> unit

val user_code_selector : Seghw.Selector.t
val user_data_selector : Seghw.Selector.t

(** The paper's `lcall $0x7, $0x0` gate selector (LDT entry 0, RPL 3). *)
val cash_gate_selector : Seghw.Selector.t

val cash_gate_handler : int
val sys_modify_ldt : int
val sys_set_ldt_callgate : int
val sys_exit : int

(** Write or clear (size 0) an LDT descriptor on behalf of a user
    process; enforces the §3.8 checks. Raises [#GP] on entry 0 or bad
    indices; only DPL-3 data segments can be created. *)
val do_modify_ldt :
  t -> ldt:Seghw.Descriptor_table.t -> index:int -> base:int -> size:int ->
  writable:bool -> unit

val install_call_gate : t -> ldt:Seghw.Descriptor_table.t -> unit

(** Host-runtime entry points: model a user-space routine executing the
    corresponding kernel-entry instruction, charging the same cycle costs
    and enforcing the same checks. [invoke_cash_modify_ldt] verifies the
    gate is actually installed, as the hardware far call would. *)
val invoke_cash_modify_ldt :
  t -> Machine.Cpu.t -> ldt:Seghw.Descriptor_table.t -> index:int ->
  base:int -> size:int -> writable:bool -> unit

val invoke_modify_ldt :
  t -> Machine.Cpu.t -> ldt:Seghw.Descriptor_table.t -> index:int ->
  base:int -> size:int -> writable:bool -> unit

val set_ldt_callgate_cycles : int

val invoke_set_ldt_callgate :
  t -> Machine.Cpu.t -> ldt:Seghw.Descriptor_table.t -> unit

(** The kernel entry point wired into each process's CPU: dispatches
    `int 0x80` and call-gate far calls. *)
val handle_entry :
  t -> ldt:Seghw.Descriptor_table.t -> Machine.Cpu.t ->
  gate:[ `Gate of Seghw.Selector.t | `Int of int ] -> unit
