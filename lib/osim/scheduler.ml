(* Request scheduling for the network-application experiments (Table 8).

   The paper's setup: client machines send 2000 requests to a server that
   forks one child process per request; the server kernel records each
   child's creation and termination times. Throughput = 2000 / (span from
   first creation to last termination); latency = average child CPU time.

   The simulated server is a single CPU, so children run back-to-back on
   the kernel's global cycle clock with a fixed fork overhead between
   them — which reproduces the paper's observation that the latency and
   throughput penalties track each other closely. *)

type record = { pid : int; created_at : int; terminated_at : int }

(* Cost of fork + exec bookkeeping per request, identical across
   compilers. *)
let default_fork_overhead = 50_000

(* Serve [requests] requests. [handle i] must create, run, and return the
   process that served request [i]. With [trace] attached, each request's
   dispatch emits one Context_switch event (the fork-and-switch to the
   serving child). *)
let serve ~kernel ~requests ?(fork_overhead = default_fork_overhead) ?trace
    handle =
  List.init requests (fun i ->
      Kernel.advance_clock kernel fork_overhead;
      let p = handle i in
      (match trace with
       | None -> ()
       | Some s -> Trace.emit s (Trace.Context_switch { pid = Process.pid p }));
      {
        pid = Process.pid p;
        created_at = Process.created_at p;
        terminated_at = Process.terminated_at p;
      })

let span records =
  match records with
  | [] -> 0
  | first :: _ ->
    let last = List.fold_left (fun _ r -> r) first records in
    last.terminated_at - first.created_at

(* Average per-request CPU time in cycles. *)
let latency records =
  match records with
  | [] -> 0.0
  | _ ->
    let total =
      List.fold_left
        (fun acc r -> acc + (r.terminated_at - r.created_at))
        0 records
    in
    float_of_int total /. float_of_int (List.length records)

(* Requests per billion cycles — an arbitrary but consistent unit. *)
let throughput records =
  let s = span records in
  if s = 0 then 0.0
  else float_of_int (List.length records) *. 1e9 /. float_of_int s
