(** A simulated user process: address space, per-process LDT, CPU, and
    libc. [load] performs what execve and the loader would: fresh LDT,
    MMU wired to the shared GDT, Linux's flat segment-register setup
    (CS = user code; SS = DS = ES = user data; FS/GS null), data section
    and stack mapped and initialised, libc host routines registered. *)

type t

val pid : t -> int
val ldt : t -> Seghw.Descriptor_table.t
val mmu : t -> Seghw.Mmu.t
val phys : t -> Machine.Phys_mem.t
val cpu : t -> Machine.Cpu.t
val libc : t -> Libc.t
val program : t -> Machine.Program.t
val kernel : t -> Kernel.t

(** Kernel-clock timestamps for Table 8's fork accounting. *)
val created_at : t -> int

val terminated_at : t -> int

(** [engine] selects the CPU interpreter ({!Machine.Cpu.Predecoded} by
    default; {!Machine.Cpu.Reference} for the equivalence oracle);
    [chain] overrides the process-wide block-chaining default for this
    CPU (meaningful only under {!Machine.Cpu.Block}). *)
val load : ?engine:Machine.Cpu.engine -> ?chain:bool -> kernel:Kernel.t ->
  Machine.Program.t -> t

(** Run to completion; advances the kernel's global clock by the cycles
    consumed and records the termination timestamp. *)
val run : ?fuel:int -> t -> Machine.Cpu.status

(** Everything the program printed. *)
val output : t -> string

val cycles : t -> int

(** Snapshot support: overwrite the identity fields of a freshly-loaded
    process with serialized ones ({!load} consumed a pid from its
    kernel; the snapshot's kernel state carries the original counter, so
    nothing is leaked or duplicated). Only the snapshot subsystem should
    call this. *)
val restore_identity :
  t -> pid:int -> created_at:int -> terminated_at:int -> unit
