(** Request scheduling for the network experiments (Table 8): one forked
    child per request on the kernel's global cycle clock. Latency is
    average child CPU time; throughput is requests over the span from
    first creation to last termination — the paper's two metrics. *)

type record = { pid : int; created_at : int; terminated_at : int }

val default_fork_overhead : int

(** [serve ~kernel ~requests handle] runs [handle i] for each request;
    the callback must create, run, and return the serving process.
    With [trace] attached, each dispatch emits one [Context_switch]
    event carrying the serving child's pid. *)
val serve :
  kernel:Kernel.t -> requests:int -> ?fork_overhead:int ->
  ?trace:Trace.sink -> (int -> Process.t) -> record list

(** Cycles from first creation to last termination. *)
val span : record list -> int

(** Average per-request CPU time, in cycles. *)
val latency : record list -> float

(** Requests per billion cycles. *)
val throughput : record list -> float
