(* A simulated user process: address space, LDT, CPU, and libc.

   [load] performs what execve + the loader would: creates a fresh LDT,
   wires an MMU to the shared GDT, initialises the segment registers to the
   Linux flat model (CS = user code; SS = DS = ES = user data; FS/GS null),
   maps and initialises the data section and the stack, and registers the
   libc host routines. Additional runtime externals (e.g. the Cash runtime)
   can be registered on [cpu] before [run]. *)

type t = {
  mutable pid : int; (* mutable only for snapshot restore *)
  kernel : Kernel.t;
  ldt : Seghw.Descriptor_table.t;
  mmu : Seghw.Mmu.t;
  phys : Machine.Phys_mem.t;
  cpu : Machine.Cpu.t;
  libc : Libc.t;
  program : Machine.Program.t;
  mutable created_at : int;
  mutable terminated_at : int;
}

let pid t = t.pid
let ldt t = t.ldt
let mmu t = t.mmu
let phys t = t.phys
let cpu t = t.cpu
let libc t = t.libc
let program t = t.program
let kernel t = t.kernel
let created_at t = t.created_at
let terminated_at t = t.terminated_at

let write_string_at phys mmu ~linear s =
  String.iteri
    (fun i c ->
      let p =
        Seghw.Mmu.translate_linear mmu ~linear:(linear + i) ~write:true
      in
      Machine.Phys_mem.write8 phys p (Char.code c))
    s

let load ?engine ?chain ~kernel (prog : Machine.Program.t) =
  let ldt = Seghw.Descriptor_table.create Seghw.Descriptor_table.Ldt_table in
  let mmu = Seghw.Mmu.create ~gdt:(Kernel.gdt kernel) ~ldt in
  let phys = Machine.Phys_mem.create () in
  (* Segment registers: the flat model. *)
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.CS Kernel.user_code_selector;
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.SS Kernel.user_data_selector;
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.DS Kernel.user_data_selector;
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.ES Kernel.user_data_selector;
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.FS Seghw.Selector.null;
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.GS Seghw.Selector.null;
  (* Stack. *)
  Seghw.Mmu.map_range mmu ~linear:Layout.stack_bottom ~size:Layout.stack_size
    ~writable:true;
  (* Data section. *)
  List.iter
    (fun (d : Machine.Program.datum) ->
      Seghw.Mmu.map_range mmu ~linear:d.Machine.Program.addr
        ~size:d.Machine.Program.size ~writable:true;
      match d.Machine.Program.init with
      | Some s -> write_string_at phys mmu ~linear:d.Machine.Program.addr s
      | None -> ())
    prog.Machine.Program.data;
  let cpu =
    Machine.Cpu.create ?engine ?chain ~mmu ~phys ~costs:(Kernel.costs kernel)
      ~program:prog ()
  in
  Machine.Registers.set (Machine.Cpu.regs cpu) Machine.Registers.ESP
    Layout.initial_esp;
  Machine.Registers.set (Machine.Cpu.regs cpu) Machine.Registers.EBP
    Layout.initial_esp;
  Machine.Cpu.set_kernel cpu (Kernel.handle_entry kernel ~ldt);
  let libc = Libc.create ~mmu in
  List.iter
    (fun (name, f) -> Machine.Cpu.register_external cpu name f)
    (Libc.externals libc);
  {
    pid = Kernel.fresh_pid kernel;
    kernel;
    ldt;
    mmu;
    phys;
    cpu;
    libc;
    program = prog;
    created_at = Kernel.clock kernel;
    terminated_at = -1;
  }

(* Run the process to completion; advances the kernel's global clock by the
   cycles consumed so the scheduler can compute spans (Table 8). *)
let run ?fuel t =
  t.created_at <- Kernel.clock t.kernel;
  let status = Machine.Cpu.run ?fuel t.cpu in
  Kernel.advance_clock t.kernel (Machine.Cpu.cycles t.cpu);
  t.terminated_at <- Kernel.clock t.kernel;
  status

let output t = Libc.output t.libc
let cycles t = Machine.Cpu.cycles t.cpu

(* Snapshot support: overwrite the identity fields of a freshly-loaded
   process with the serialized ones. [load] consumed a pid from its
   kernel; the snapshot's kernel state (restored separately) carries the
   original pid counter, so no pid is leaked or duplicated. *)
let restore_identity t ~pid ~created_at ~terminated_at =
  t.pid <- pid;
  t.created_at <- created_at;
  t.terminated_at <- terminated_at
