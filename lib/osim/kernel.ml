(* The simulated operating system kernel.

   Models the two kernel facilities the Cash paper adds to Linux 2.4 (§3.6):

   - [modify_ldt] reached through `int 0x80` (syscall 123): the stock Linux
     path. It saves/restores all registers and copies parameters, which is
     why the paper measures it at 781 cycles. The cycle cost is charged by
     the CPU's cost model on the `Int_syscall` instruction.

   - [cash_modify_ldt] reached through a call gate installed in LDT entry 0
     by the new [set_ldt_callgate] syscall (242). It only saves EDX/DS and
     passes parameters in registers, measured at 253 cycles; again the cost
     model charges this on `Lcall_gate`.

   Parameter passing is register-based for both paths (EBX = LDT index,
   ECX = base, EDX = size in bytes, ESI = writable flag; size 0 clears the
   entry). The real modify_ldt takes a user_desc struct pointer — the
   register ABI is a simulator simplification; the *cost asymmetry* between
   the two paths is preserved by the cost model, which is what the paper's
   argument rests on.

   Security invariants (§3.8), enforced here and unit-tested: neither path
   can create a call gate or a privileged (DPL < 3) segment in the LDT, and
   neither can touch LDT entry 0 once the call gate is installed. *)

type stats = {
  mutable modify_ldt_calls : int;     (* slow int-0x80 path *)
  mutable cash_modify_ldt_calls : int; (* fast call-gate path *)
  mutable descriptors_written : int;
  mutable descriptors_cleared : int;
}

type t = {
  gdt : Seghw.Descriptor_table.t;
  costs : Machine.Cost_model.t;
  mutable next_pid : int;
  mutable clock : int; (* global cycle clock, advanced by the scheduler *)
  stats : stats;
}

(* Fixed GDT layout, mirroring Linux's: entries for kernel and user flat
   segments. All user segments are flat 4 GiB (base 0, limit 0xFFFFF, G=1),
   giving the classic flat address-space model that Cash layers segments on
   top of. *)
let kernel_code_index = 1
let kernel_data_index = 2
let user_code_index = 3
let user_data_index = 4

let flat ~dpl ~seg_type =
  Seghw.Descriptor.make ~base:0 ~limit:0xFFFFF ~granularity:true ~dpl
    ~present:true ~seg_type

let create ?(costs = Machine.Cost_model.pentium3) () =
  let gdt = Seghw.Descriptor_table.create Seghw.Descriptor_table.Gdt_table in
  Seghw.Descriptor_table.set gdt kernel_code_index
    (flat ~dpl:0 ~seg_type:(Seghw.Descriptor.Code { readable = true }));
  Seghw.Descriptor_table.set gdt kernel_data_index
    (flat ~dpl:0 ~seg_type:(Seghw.Descriptor.Data { writable = true }));
  Seghw.Descriptor_table.set gdt user_code_index
    (flat ~dpl:3 ~seg_type:(Seghw.Descriptor.Code { readable = true }));
  Seghw.Descriptor_table.set gdt user_data_index
    (flat ~dpl:3 ~seg_type:(Seghw.Descriptor.Data { writable = true }));
  {
    gdt;
    costs;
    next_pid = 1;
    clock = 0;
    stats =
      {
        modify_ldt_calls = 0;
        cash_modify_ldt_calls = 0;
        descriptors_written = 0;
        descriptors_cleared = 0;
      };
  }

let gdt t = t.gdt
let costs t = t.costs
let stats t = t.stats
let clock t = t.clock
let advance_clock t cycles = t.clock <- t.clock + cycles

let fresh_pid t =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  pid

(* Snapshot support: the kernel's mutable state, minus the GDT (its
   fixed flat layout is recreated by [create] and any further entries
   travel in the snapshot's descriptor-table section). *)
type persisted = {
  p_next_pid : int;
  p_clock : int;
  p_modify_ldt_calls : int;
  p_cash_modify_ldt_calls : int;
  p_descriptors_written : int;
  p_descriptors_cleared : int;
}

let export_state t =
  {
    p_next_pid = t.next_pid;
    p_clock = t.clock;
    p_modify_ldt_calls = t.stats.modify_ldt_calls;
    p_cash_modify_ldt_calls = t.stats.cash_modify_ldt_calls;
    p_descriptors_written = t.stats.descriptors_written;
    p_descriptors_cleared = t.stats.descriptors_cleared;
  }

let import_state t (p : persisted) =
  t.next_pid <- p.p_next_pid;
  t.clock <- p.p_clock;
  t.stats.modify_ldt_calls <- p.p_modify_ldt_calls;
  t.stats.cash_modify_ldt_calls <- p.p_cash_modify_ldt_calls;
  t.stats.descriptors_written <- p.p_descriptors_written;
  t.stats.descriptors_cleared <- p.p_descriptors_cleared

(* Selectors handed to user processes. *)
let user_code_selector =
  Seghw.Selector.make ~index:user_code_index ~table:Seghw.Selector.Gdt ~rpl:3

let user_data_selector =
  Seghw.Selector.make ~index:user_data_index ~table:Seghw.Selector.Gdt ~rpl:3

(* The call-gate selector Cash programs use: LDT entry 0, RPL 3 — the
   `lcall $0x7, $0x0` of the paper. *)
let cash_gate_selector =
  Seghw.Selector.make ~index:0 ~table:Seghw.Selector.Ldt ~rpl:3

let cash_gate_handler = 1

(* Syscall numbers. *)
let sys_modify_ldt = 123
let sys_set_ldt_callgate = 242
let sys_exit = 1

(* Write or clear an LDT descriptor on behalf of a user process. This is
   the common core of both the slow and the fast path; all the §3.8
   security checks live here. *)
let do_modify_ldt t ~ldt ~index ~base ~size ~writable =
  if index = 0 then
    Seghw.Fault.gp "modify_ldt: entry 0 is reserved for the call gate";
  if index < 0 || index >= Seghw.Descriptor_table.capacity then
    Seghw.Fault.gp (Printf.sprintf "modify_ldt: bad index %d" index);
  if size = 0 then begin
    Seghw.Descriptor_table.clear ldt index;
    t.stats.descriptors_cleared <- t.stats.descriptors_cleared + 1
  end
  else begin
    (* Only unprivileged data segments can be created: no call gates, no
       code segments, no DPL < 3. *)
    let d = Seghw.Descriptor.for_array ~base ~size_bytes:size ~writable in
    Seghw.Descriptor_table.set ldt index d;
    t.stats.descriptors_written <- t.stats.descriptors_written + 1
  end

let install_call_gate t ~ldt =
  ignore t;
  Seghw.Descriptor_table.set ldt 0
    (Seghw.Descriptor.make ~base:0 ~limit:0 ~granularity:false ~dpl:3
       ~present:true
       ~seg_type:
         (Seghw.Descriptor.Call_gate
            { handler = cash_gate_handler; param_count = 0 }))

(* Host-runtime entry points: these model a user-space runtime routine
   executing `lcall $0x7,$0x0` or `int 0x80` without simulating the
   routine's own instructions. They charge the same cycle costs the cost
   model charges for the corresponding instructions, verify the same
   conditions, and bump the same statistics. *)

(* LDT-update trace events ride the CPU's sink (one per successful
   update, after the §3.8 checks pass). *)
let emit_ldt_update cpu ~path ~index ~size =
  match Machine.Cpu.sink cpu with
  | None -> ()
  | Some s ->
    Trace.emit s (Trace.Ldt_update { path; index; cleared = size = 0 })

let emit_gate_entry cpu ~selector =
  match Machine.Cpu.sink cpu with
  | None -> ()
  | Some s -> Trace.emit s (Trace.Call_gate_entry { selector })

let invoke_cash_modify_ldt t cpu ~ldt ~index ~base ~size ~writable =
  Machine.Cpu.add_cycles cpu t.costs.Machine.Cost_model.call_gate;
  (* The gate must actually be installed; calling before set_ldt_callgate
     faults exactly as the hardware far call would. *)
  (match Seghw.Descriptor_table.get ldt 0 with
   | Some d when Seghw.Descriptor.is_call_gate d -> ()
   | _ -> Seghw.Fault.gp "cash_modify_ldt: call gate not installed");
  emit_gate_entry cpu ~selector:(Seghw.Selector.to_int cash_gate_selector);
  t.stats.cash_modify_ldt_calls <- t.stats.cash_modify_ldt_calls + 1;
  do_modify_ldt t ~ldt ~index ~base ~size ~writable;
  emit_ldt_update cpu ~path:Trace.Call_gate ~index ~size

let invoke_modify_ldt t cpu ~ldt ~index ~base ~size ~writable =
  Machine.Cpu.add_cycles cpu t.costs.Machine.Cost_model.int_syscall;
  t.stats.modify_ldt_calls <- t.stats.modify_ldt_calls + 1;
  do_modify_ldt t ~ldt ~index ~base ~size ~writable;
  emit_ldt_update cpu ~path:Trace.Slow_syscall ~index ~size

(* Cost of the set_ldt_callgate system call: a plain syscall without the
   register-restore burden of modify_ldt. Together with the runtime's
   free-list initialisation this makes up the paper's 543-cycle per-program
   overhead. *)
let set_ldt_callgate_cycles = 500

let invoke_set_ldt_callgate t cpu ~ldt =
  Machine.Cpu.add_cycles cpu set_ldt_callgate_cycles;
  install_call_gate t ~ldt

(* The kernel entry point wired into each process's CPU: dispatches
   `int 0x80` and call-gate far calls. *)
let handle_entry t ~ldt cpu ~gate =
  let regs = Machine.Cpu.regs cpu in
  let reg r = Machine.Registers.get regs r in
  match gate with
  | `Int 0x80 ->
    (match reg Machine.Registers.EAX with
     | n when n = sys_modify_ldt ->
       t.stats.modify_ldt_calls <- t.stats.modify_ldt_calls + 1;
       do_modify_ldt t ~ldt ~index:(reg Machine.Registers.EBX)
         ~base:(reg Machine.Registers.ECX) ~size:(reg Machine.Registers.EDX)
         ~writable:(reg Machine.Registers.ESI <> 0);
       emit_ldt_update cpu ~path:Trace.Slow_syscall
         ~index:(reg Machine.Registers.EBX)
         ~size:(reg Machine.Registers.EDX)
     | n when n = sys_set_ldt_callgate -> install_call_gate t ~ldt
     | n when n = sys_exit -> Seghw.Fault.gp "sys_exit via int 0x80"
     | n -> Seghw.Fault.gp (Printf.sprintf "unknown syscall %d" n))
  | `Int n -> Seghw.Fault.gp (Printf.sprintf "unknown interrupt 0x%x" n)
  | `Gate sel ->
    (* Resolve the gate through the LDT exactly as hardware would: the
       selector must name a present call gate. *)
    if Seghw.Selector.table sel <> Seghw.Selector.Ldt then
      Seghw.Fault.gp "far call through non-LDT selector";
    let d = Seghw.Descriptor_table.lookup_exn ldt (Seghw.Selector.index sel) in
    (match d.Seghw.Descriptor.seg_type with
     | Seghw.Descriptor.Call_gate { handler; _ }
       when handler = cash_gate_handler ->
       emit_gate_entry cpu ~selector:(Seghw.Selector.to_int sel);
       t.stats.cash_modify_ldt_calls <- t.stats.cash_modify_ldt_calls + 1;
       do_modify_ldt t ~ldt ~index:(reg Machine.Registers.EBX)
         ~base:(reg Machine.Registers.ECX) ~size:(reg Machine.Registers.EDX)
         ~writable:(reg Machine.Registers.ESI <> 0);
       emit_ldt_update cpu ~path:Trace.Call_gate
         ~index:(reg Machine.Registers.EBX)
         ~size:(reg Machine.Registers.EDX)
     | Seghw.Descriptor.Call_gate { handler; _ } ->
       Seghw.Fault.gp (Printf.sprintf "unknown call-gate handler %d" handler)
     | _ -> Seghw.Fault.gp "far call target is not a call gate")
