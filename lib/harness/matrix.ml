(* The five-scheme protection matrix (bench --matrix): every protection
   scheme in the repo — software fat pointers (BCC), BCC through the
   x86 BOUND instruction, Cash segmentation, MPX-style bounds
   registers, and tagged capabilities — over one representative
   workload slice: micro kernels (Table 1), macro applications
   (Table 5), and network application servers (Table 8), in one
   headline table against the unchecked GCC baseline.

   The run gates three invariants and raises [Runner.Disagreement]
   when any fails:
   - every scheme finishes every workload (they are all in-bounds
     programs — no checker may reject a correct program);
   - every scheme's output is byte-identical to the baseline's;
   - no scheme runs in fewer simulated cycles than the baseline (GCC
     is the cycle floor: protection never speeds a program up).

   Work fans out over [Parallel.run_jobs], one (workload, scheme) pair
   per job; the table is assembled from the results in list order, so
   the printed bytes are identical at any -j, and — because simulated
   cycles are engine-independent — under any engine. CI pins both
   properties. *)

let schemes =
  [ ("gcc", Core.gcc); ("bcc", Core.bcc); ("bcc-bound", Core.bcc_bound);
    ("cash", Core.cash); ("mpx", Core.mpx); ("cap", Core.cap) ]

type workload = { w_class : string; w_name : string; w_source : string }

let workloads ~quick =
  let micro =
    List.map
      (fun (k : Workloads.Micro.kernel) ->
        { w_class = "micro"; w_name = k.Workloads.Micro.name;
          w_source = k.Workloads.Micro.source })
      (Workloads.Micro.table1_suite ())
  in
  let macro =
    List.map
      (fun (a : Workloads.Macro.app) ->
        { w_class = "macro"; w_name = a.Workloads.Macro.name;
          w_source = a.Workloads.Macro.source })
      (Workloads.Macro.table5_suite ())
  in
  let net =
    List.map
      (fun (a : Workloads.Netapps.app) ->
        { w_class = "netapps"; w_name = a.Workloads.Netapps.name;
          w_source = a.Workloads.Netapps.source })
      (Workloads.Netapps.table8_suite ())
  in
  if quick then
    let take n l = List.filteri (fun i _ -> i < n) l in
    take 2 micro @ take 2 macro @ take 2 net
  else micro @ macro @ net

type cell = { c_cycles : int; c_output : string; c_status : Core.status }

(* Aggregate per-scheme totals, for the BENCH json record and the
   summary lines under the table. *)
type totals = { t_scheme : string; t_cycles : int; t_overhead_pct : float }

let measure backend source =
  let r = Core.exec backend source in
  { c_cycles = r.Core.cycles; c_output = r.Core.output;
    c_status = r.Core.status }

let status_name = function
  | Core.Finished -> "finished"
  | Core.Bound_violation m -> "bound_violation: " ^ m
  | Core.Crashed m -> "crashed: " ^ m

let run ?(quick = false) ?jobs () =
  let works = workloads ~quick in
  let pairs =
    List.concat_map (fun w -> List.map (fun s -> (w, s)) schemes) works
  in
  let cells =
    Parallel.run_jobs ?jobs
      (Array.of_list
         (List.map
            (fun (w, (_, backend)) () -> measure backend w.w_source)
            pairs))
  in
  (* Regroup: [pairs] enumerates schemes innermost, so workload [i]'s
     cells occupy the contiguous slice starting at [i * n_schemes]. *)
  let n_schemes = List.length schemes in
  let rows =
    List.mapi
      (fun i w ->
        let cell j = cells.((i * n_schemes) + j) in
        let base = cell 0 in
        List.iteri
          (fun j (sname, _) ->
            let c = cell j in
            if c.c_status <> Core.Finished then
              raise
                (Runner.Disagreement
                   (Printf.sprintf "matrix: %s did not finish %s (%s)" sname
                      w.w_name (status_name c.c_status)));
            if c.c_output <> base.c_output then
              raise
                (Runner.Disagreement
                   (Printf.sprintf "matrix: %s output differs from gcc on %s"
                      sname w.w_name));
            if c.c_cycles < base.c_cycles then
              raise
                (Runner.Disagreement
                   (Printf.sprintf
                      "matrix: %s ran %s in fewer cycles than the gcc floor \
                       (%d < %d)"
                      sname w.w_name c.c_cycles base.c_cycles)))
          schemes;
        (w, base, List.init n_schemes cell))
      works
  in
  let table_rows =
    List.map
      (fun (w, base, cells) ->
        let overheads =
          List.map
            (fun c ->
              Report.pct (Report.overhead ~base:base.c_cycles c.c_cycles))
            (List.filteri (fun j _ -> j > 0) cells)
        in
        (w.w_class :: w.w_name :: Report.kcycles base.c_cycles :: overheads))
      rows
  in
  let totals =
    List.mapi
      (fun j (sname, _) ->
        let cycles =
          List.fold_left (fun acc (_, _, cells) ->
              acc + (List.nth cells j).c_cycles)
            0 rows
        in
        let base =
          List.fold_left (fun acc (_, b, _) -> acc + b.c_cycles) 0 rows
        in
        { t_scheme = sname; t_cycles = cycles;
          t_overhead_pct = Report.overhead ~base cycles })
      schemes
  in
  let report =
    Report.make
      ~title:
        (Printf.sprintf "Five-scheme protection matrix%s"
           (if quick then " (quick slice)" else ""))
      ~headers:
        [ "Class"; "Program"; "GCC"; "BCC"; "BCC-bound"; "Cash"; "MPX";
          "Cap" ]
      ~rows:table_rows
      ~notes:
        [
          "GCC column is simulated cycles; every other column is overhead \
           vs GCC.";
          "Cash checks loop references only (§3.8); MPX and Cap check \
           every reference.";
          "MPX/Cap cycle costs are calibrated from \"Intel MPX \
           Explained\" (see EXPERIMENTS.md).";
        ]
      ()
  in
  (report, totals)
