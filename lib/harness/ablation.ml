(* §4.2's segment-register ablation: the micro suite under 2, 3, and 4
   segment registers. With fewer registers more loops spill to software
   checks and the overhead rises; the paper's 2-register numbers were
   SVDPACKC 35.7%, Matrix 1.5%, Edge Detect 44.2%, with FFT / Gaussian /
   Volume Rendering fully eliminating software checks even at 2. *)

let budgets = [ 2; 3; 4 ]

(* The grid cells are independent simulations (one kernel × one
   register budget, each on its own machine), so the per-kernel rows
   fan out across domains; [Parallel.map] returns them in suite order,
   keeping the table byte-identical to a serial run. Nested under the
   bench fan-out the map degrades to serial automatically; with an
   ambient trace sink attached the rows are pinned to the tracing
   domain (the sink is domain-local — spawned rows would go untraced). *)
let grid_jobs () = if Core.current_trace () <> None then Some 1 else None

let run () =
  let rows =
    Parallel.map ?jobs:(grid_jobs ())
      (fun (k : Workloads.Micro.kernel) ->
        let cells =
          List.concat_map
            (fun budget ->
              let c =
                Runner.compare_backends ~cash:(Core.cash_n budget)
                  k.Workloads.Micro.source
              in
              let hw, sw = Runner.hw_sw_checks c.Runner.cash in
              [
                Report.pct (Runner.cash_overhead c);
                Printf.sprintf "%d/%d" hw sw;
              ])
            budgets
        in
        k.Workloads.Micro.name :: cells)
      (Workloads.Micro.table1_suite ())
  in
  Report.make ~title:"Ablation: segment-register budget (overhead, HW/SW)"
    ~headers:
      [ "Program"; "2 regs"; "HW/SW"; "3 regs"; "HW/SW"; "4 regs"; "HW/SW" ]
    ~rows
    ~notes:
      [
        "fewer registers => more spilled (software) checks => higher \
         overhead; 4 registers eliminate software checks everywhere, as \
         the paper reports (§4.2).";
      ]
    ()

(* Dynamic software-check counts per budget, for one spill-heavy kernel:
   the paper's 2-register discussion quantifies eliminated checks. *)
let sw_check_dynamics () =
  let rows =
    List.map
      (fun budget ->
        let r =
          Core.exec (Core.cash_n budget) (Workloads.Micro.svd ())
        in
        [
          string_of_int budget;
          string_of_int (Core.stat_sum r ~prefix:"__stat_swc_");
          string_of_int r.Core.cycles;
        ])
      budgets
  in
  Report.make ~title:"SVDPACKC: dynamic software checks vs register budget"
    ~headers:[ "registers"; "software checks executed"; "cycles" ]
    ~rows ()

(* §3.8's security-only deployment: reads unchecked, writes checked. The
   paper predicts lower overhead from fewer segment registers and fewer
   software checks; this quantifies it on the micro suite. *)
let security_only () =
  let rows =
    Parallel.map ?jobs:(grid_jobs ())
      (fun (k : Workloads.Micro.kernel) ->
        let full = Runner.compare_backends k.Workloads.Micro.source in
        let sec =
          Runner.measure Core.cash_security k.Workloads.Micro.source
        in
        (* outputs must agree: skipping read checks never changes results *)
        if Runner.output sec <> Runner.output full.Runner.gcc then
          raise (Runner.Disagreement "security-only changed program output");
        [
          k.Workloads.Micro.name;
          Report.pct (Runner.cash_overhead full);
          Report.pct
            (Report.overhead
               ~base:(Runner.cycles full.Runner.gcc)
               (Runner.cycles sec));
        ])
      (Workloads.Micro.table1_suite ())
  in
  Report.make ~title:"Ablation: security-only mode (§3.8, writes checked only)"
    ~headers:[ "Program"; "Cash (full)"; "Cash (security-only)" ]
    ~rows
    ~notes:
      [
        "read-only arrays stop consuming segment registers and reads never \
         take software checks, as §3.8 predicts.";
      ]
    ()

(* §2's BOUND instruction: one opcode, 7 cycles, bounds pair in memory —
   versus the 6-instruction plain sequence it lost to. *)
let bound_instruction () =
  let rows =
    Parallel.map ?jobs:(grid_jobs ())
      (fun (k : Workloads.Micro.kernel) ->
        let c = Runner.compare_backends k.Workloads.Micro.source in
        let bb = Runner.measure Core.bcc_bound k.Workloads.Micro.source in
        if Runner.output bb <> Runner.output c.Runner.gcc then
          raise (Runner.Disagreement "bound backend changed program output");
        [
          k.Workloads.Micro.name;
          Report.pct (Runner.bcc_overhead c);
          Report.pct
            (Report.overhead
               ~base:(Runner.cycles c.Runner.gcc)
               (Runner.cycles bb));
        ])
      (Workloads.Micro.table1_suite ())
  in
  Report.make
    ~title:"Ablation: BOUND instruction vs 6-instruction sequence (§2)"
    ~headers:[ "Program"; "BCC (6 insns)"; "BCC (BOUND)" ]
    ~rows
    ~notes:
      [
        "the BOUND instruction loses everywhere — 7 cycles against 6, plus \
         memory-resident bounds — reproducing why it was never used.";
      ]
    ()

(* §2's Electric Fence comparator: guard-page malloc under the unchecked
   compiler. Zero per-reference cycle cost like Cash, but (a) only heap
   buffers are protected, and (b) every allocation burns pages — "it
   consumes too much virtual memory space". *)
let efence () =
  let heap_kernel = {|
int process(int *buf, int n, int seed) {
  int i; int s = 0;
  for (i = 0; i < n; i++) buf[i] = (seed * 31 + i) % 97;
  for (i = 0; i < n; i++) s += buf[i];
  return s;
}
int main() {
  int r; int total = 0;
  for (r = 0; r < 200; r++) {
    int *buf = (int*)malloc(24 * sizeof(int));
    total += process(buf, 24, r);
    free(buf);
  }
  print_int(total);
  return 0;
}
|} in
  let heap_overflow = {|
int main() {
  int *p = (int*)malloc(24 * sizeof(int));
  int i;
  for (i = 0; i < 25; i++) p[i] = i;
  free(p);
  return 0;
}
|} in
  let stack_overflow = {|
int main() {
  int buf[8];
  int i;
  for (i = 0; i <= 8; i++) buf[i] = i;
  return 0;
}
|} in
  let describe status =
    match status with
    | Core.Finished -> "missed"
    | Core.Bound_violation _ -> "caught (bound check)"
    | Core.Crashed m ->
      if String.length m >= 3 && String.sub m 0 3 = "#PF" then
        "caught (guard page #PF)"
      else "crashed: " ^ m
  in
  let g = Core.exec Core.gcc heap_kernel in
  let e = Core.exec ~guard_malloc:true Core.gcc heap_kernel in
  let c = Core.exec Core.cash heap_kernel in
  let heap_bytes run =
    Osim.Libc.peak_heap (Osim.Process.libc run.Core.process)
  in
  Report.make ~title:"Ablation: Electric Fence guard-page malloc (§2)"
    ~headers:[ "quantity"; "gcc"; "gcc+efence"; "cash" ]
    ~rows:
      [
        [ "cycles (200 heap rounds)";
          string_of_int g.Core.cycles;
          string_of_int e.Core.cycles;
          string_of_int c.Core.cycles ];
        [ "peak heap (bytes)";
          string_of_int (heap_bytes g);
          string_of_int (heap_bytes e);
          string_of_int (heap_bytes c) ];
        [ "heap overflow";
          describe (Core.exec Core.gcc heap_overflow).Core.status;
          describe
            (Core.exec ~guard_malloc:true Core.gcc heap_overflow).Core.status;
          describe (Core.exec Core.cash heap_overflow).Core.status ];
        [ "stack-array overflow";
          describe (Core.exec Core.gcc stack_overflow).Core.status;
          describe
            (Core.exec ~guard_malloc:true Core.gcc stack_overflow).Core.status;
          describe (Core.exec Core.cash stack_overflow).Core.status ];
      ]
    ~notes:
      [
        "Electric Fence catches heap overruns with zero cycle overhead but \
         burns two pages per allocation and cannot see static or stack \
         arrays — the paper's §2 assessment.";
      ]
    ()
