(* Table 8: latency penalty, throughput penalty, and space overhead of the
   network applications (§4.4).

   The paper's setup: clients send 2000 requests; the server forks one
   child per request; latency is average child CPU time, throughput is
   2000 / (first fork .. last exit). We run [requests] simulated children
   per compiler on a shared kernel clock with the scheduler's fork
   overhead, which reproduces the paper's observation that latency and
   throughput penalties track each other.

   Space overhead is the program image (text + initialised data),
   mirroring the statically-linked binary sizes the paper reports. *)

let default_requests = 50

let serve backend source ~requests =
  let kernel = Osim.Kernel.create () in
  let compiled = Core.compile backend source in
  let reference = ref None in
  let records =
    Osim.Scheduler.serve ~kernel ~requests ?trace:(Core.current_trace ())
      (fun _ ->
        let run = Core.run ~kernel compiled in
        (match run.Core.status with
         | Core.Finished -> ()
         | _ -> raise (Runner.Disagreement "request handler did not finish"));
        (match !reference with
         | None -> reference := Some run.Core.output
         | Some r ->
           if r <> run.Core.output then
             raise (Runner.Disagreement "nondeterministic handler output"));
        run.Core.process)
  in
  ( Osim.Scheduler.latency records,
    Osim.Scheduler.throughput records,
    Core.static_info compiled )

let run ?(requests = default_requests) () =
  let rows =
    List.map
      (fun (a : Workloads.Netapps.app) ->
        let src = a.Workloads.Netapps.source in
        let glat, gthr, ginfo = serve Core.gcc src ~requests in
        let clat, cthr, cinfo = serve Core.cash src ~requests in
        let latency_pen = 100.0 *. (clat /. glat -. 1.0) in
        let throughput_pen = 100.0 *. (1.0 -. (cthr /. gthr)) in
        let space =
          Report.overhead ~base:ginfo.Core.image_bytes cinfo.Core.image_bytes
        in
        [
          a.Workloads.Netapps.name;
          Report.pct latency_pen;
          Report.pct throughput_pen;
          Report.pct space;
          Printf.sprintf "%.1f/%.1f/%.1f%%" a.Workloads.Netapps.paper_latency_pct
            a.Workloads.Netapps.paper_throughput_pct
            a.Workloads.Netapps.paper_space_pct;
        ])
      (Workloads.Netapps.table8_suite ())
  in
  Report.make ~title:"Table 8: network applications under Cash"
    ~headers:
      [ "Program"; "Latency"; "Throughput"; "Space"; "paper (lat/thr/space)" ]
    ~rows
    ~notes:
      [
        "latency and throughput penalties track each other, as in the \
         paper (single-CPU server, §4.4).";
      ]
    ()
