(* Table 8: latency penalty, throughput penalty, and space overhead of the
   network applications (§4.4).

   The paper's setup: clients send 2000 requests; the server forks one
   child per request; latency is average child CPU time, throughput is
   2000 / (first fork .. last exit). We run [requests] simulated children
   per compiler on a shared kernel clock with the scheduler's fork
   overhead, which reproduces the paper's observation that latency and
   throughput penalties track each other.

   Space overhead is the program image (text + initialised data),
   mirroring the statically-linked binary sizes the paper reports. *)

let default_requests = 50

let serve backend source ~requests =
  let kernel = Osim.Kernel.create () in
  let compiled = Core.compile backend source in
  let reference = ref None in
  let records =
    Osim.Scheduler.serve ~kernel ~requests ?trace:(Core.current_trace ())
      (fun _ ->
        let run = Core.run ~kernel compiled in
        (match run.Core.status with
         | Core.Finished -> ()
         | _ -> raise (Runner.Disagreement "request handler did not finish"));
        (match !reference with
         | None -> reference := Some run.Core.output
         | Some r ->
           if r <> run.Core.output then
             raise (Runner.Disagreement "nondeterministic handler output"));
        run.Core.process)
  in
  ( Osim.Scheduler.latency records,
    Osim.Scheduler.throughput records,
    Core.static_info compiled )

(* One row: an app's gcc and cash serve metrics, rendered. Shared by the
   serial path and the warm-started split so both produce identical
   bytes. *)
let row (a : Workloads.Netapps.app) (glat, gthr, ginfo) (clat, cthr, cinfo) =
  let latency_pen = 100.0 *. (clat /. glat -. 1.0) in
  let throughput_pen = 100.0 *. (1.0 -. (cthr /. gthr)) in
  let space =
    Report.overhead ~base:ginfo.Core.image_bytes cinfo.Core.image_bytes
  in
  [
    a.Workloads.Netapps.name;
    Report.pct latency_pen;
    Report.pct throughput_pen;
    Report.pct space;
    Printf.sprintf "%.1f/%.1f/%.1f%%" a.Workloads.Netapps.paper_latency_pct
      a.Workloads.Netapps.paper_throughput_pct
      a.Workloads.Netapps.paper_space_pct;
  ]

let make_report rows =
  Report.make ~title:"Table 8: network applications under Cash"
    ~headers:
      [ "Program"; "Latency"; "Throughput"; "Space"; "paper (lat/thr/space)" ]
    ~rows
    ~notes:
      [
        "latency and throughput penalties track each other, as in the \
         paper (single-CPU server, §4.4).";
      ]
    ()

let run ?(requests = default_requests) () =
  let rows =
    List.map
      (fun (a : Workloads.Netapps.app) ->
        let src = a.Workloads.Netapps.source in
        let g = serve Core.gcc src ~requests in
        let c = serve Core.cash src ~requests in
        row a g c)
      (Workloads.Netapps.table8_suite ())
  in
  make_report rows

(* --- warm-started per-request split -------------------------------------

   The serial [serve] re-runs the whole server program once per request:
   every request is a fresh fork of an identical, deterministic child,
   so each one repeats the same init work before handling its request.
   The split runs each server ONCE to its accept-loop boundary (the
   [server_ready] marker), snapshots it there, and warm-starts every
   request as its own job from that image. The restored CPU carries the
   init-portion cycle count, so a resumed request reports exactly the
   serial per-request cycles, and the scheduler's clock is replayed over
   the per-job counts — the assembled table is byte-identical to the
   serial one at any job count, while the largest single job shrinks
   from requests x whole-program to one post-init request. *)

type warm = {
  w_label : string;              (* "qpopper/gcc" *)
  w_compiled : Core.compiled;
  w_image : bytes option;
      (* [None]: the server never reached the marker (e.g. a workload
         without a [server_ready] call); its requests cold-start, which
         costs the init replay but stays byte-identical. *)
}

(* The 12 (app, backend) pairs, app-major, gcc before cash — the order
   [run] serves them. *)
let split_pairs () =
  List.concat_map
    (fun (a : Workloads.Netapps.app) ->
      List.map
        (fun backend ->
          ( a,
            backend,
            Printf.sprintf "%s/%s" a.Workloads.Netapps.name
              (Core.backend_name backend) ))
        [ Core.gcc; Core.cash ])
    (Workloads.Netapps.table8_suite ())

(* Warm one server: compile, run to the accept loop, snapshot. *)
let warm (a, backend, label) =
  let compiled = Core.compile backend a.Workloads.Netapps.source in
  let state = Core.start compiled in
  let image =
    if Snapshot.run_to_marker (Core.state_process state) then
      Some (Buffer.to_bytes (Core.save state))
    else None
  in
  { w_label = label; w_compiled = compiled; w_image = image }

(* What the table needs from one served request. Deliberately NOT the
   full [Core.run]: a run pins its whole simulated machine (physical
   memory, page tables — megabytes), and the split holds every
   request's result until [assemble]. Keeping runs alive put >1 GB on
   the major heap at 12 pairs x 50 requests and made the split slower
   than the monolith it replaces; the slim record lets each machine die
   with its job. *)
type served = {
  s_output : string;  (* determinism check across a pair's requests *)
  s_cycles : int;     (* scheduler clock replay in [pair_metrics] *)
}

(* Serve request [i] from a warmed server: restore the post-init image
   and run it to completion. Emits the scheduler's Context_switch (with
   the pid the serial serve would have assigned) into the job's ambient
   sink, mirroring [Osim.Scheduler.serve]. *)
let request w i =
  let run =
    match w.w_image with
    | Some image -> Core.finish (Core.restore w.w_compiled image)
    | None -> Core.run w.w_compiled
  in
  (match run.Core.status with
   | Core.Finished -> ()
   | _ -> raise (Runner.Disagreement "request handler did not finish"));
  (match Core.current_trace () with
   | None -> ()
   | Some s -> Trace.emit s (Trace.Context_switch { pid = i + 1 }));
  { s_output = run.Core.output; s_cycles = run.Core.cycles }

(* Replay the scheduler's clock over per-request cycle counts and fold
   the result into the same metrics [serve] computes. *)
let pair_metrics w (runs : served list) =
  (match runs with
   | [] -> ()
   | first :: rest ->
     List.iter
       (fun r ->
         if r.s_output <> first.s_output then
           raise (Runner.Disagreement "nondeterministic handler output"))
       rest);
  let clock = ref 0 in
  let records =
    List.mapi
      (fun i r ->
        clock := !clock + Osim.Scheduler.default_fork_overhead;
        let created_at = !clock in
        clock := !clock + r.s_cycles;
        { Osim.Scheduler.pid = i + 1; created_at; terminated_at = !clock })
      runs
  in
  ( Osim.Scheduler.latency records,
    Osim.Scheduler.throughput records,
    Core.static_info w.w_compiled )

(* Assemble the table from warmed servers (in [split_pairs] order) and
   their per-request runs. *)
let assemble ~(warms : warm list) ~(runs : served list list) =
  let apps = Workloads.Netapps.table8_suite () in
  let rec rows warms runs apps =
    match (warms, runs, apps) with
    | wg :: wc :: warms', rg :: rc :: runs', a :: apps' ->
      row a (pair_metrics wg rg) (pair_metrics wc rc) :: rows warms' runs' apps'
    | [], [], [] -> []
    | _ -> invalid_arg "Table8.assemble: warms/runs out of step"
  in
  make_report (rows warms runs apps)

(* The whole split as one call, for CLI entry points that run Table 8 by
   itself ([Suite.run_all] interleaves the same warm/request jobs with
   the other experiments instead). Byte-identical to [run] at any
   [jobs]. *)
let run_split ?jobs ?(requests = default_requests) () =
  let pairs = split_pairs () in
  let warms =
    Array.to_list
      (Parallel.run_jobs ?jobs
         (Array.of_list (List.map (fun p () -> warm p) pairs)))
  in
  let tasks =
    List.concat_map
      (fun w -> List.init requests (fun i () -> request w i))
      warms
  in
  let all_runs = Parallel.run_jobs ?jobs (Array.of_list tasks) in
  let runs =
    List.mapi
      (fun k _ -> Array.to_list (Array.sub all_runs (k * requests) requests))
      warms
  in
  assemble ~warms ~runs
