(* The canonical experiment list — every table and figure of the paper —
   and the parallel driver that regenerates them.

   One list shared by bench/main.exe, bin/experiments.exe, and the
   serial-vs-parallel oracle test, so "the full reproduction" means the
   same experiments everywhere. Each experiment builds its own kernel,
   machine, and MMU, making the jobs independent and deterministic;
   [run_all] fans them out over [Parallel.run_jobs] and returns the
   reports in list order, so the printed output is byte-identical to a
   serial run at any [-j].

   Table 8 is special-cased: its serial closure reruns every server once
   per request, which made it the monolithic job that bounded the whole
   suite's wall-clock. [run_all] instead fans it out through the
   lib/snapshot warm-start split — the 12 (app, backend) warm jobs join
   the first round alongside the other experiments, every per-request
   job runs in a second round, and the table is assembled serially from
   the per-job cycle counts ([Table8.assemble]), byte-identical to the
   serial closure at any [-j]. *)

let default_table8_requests = 25

type experiment = {
  name : string;
  run : unit -> Report.t;
      (* self-contained serial closure: what bechamel measures, and what
         [run_all] executes for experiments that do not split *)
  split_requests : int option;
      (* [Some r]: [run_all] replaces the serial closure by the
         warm-started per-request split at [r] requests *)
}

let simple name run = { name; run; split_requests = None }

let all ?(table8_requests = default_table8_requests) () : experiment list =
  [
    simple "table1" Table1.run;
    simple "table2" Table2.run;
    simple "table3" Table3.run;
    simple "table4" Table4.run;
    simple "table5" Table5.run;
    simple "table6" Table6.run;
    simple "table7" Table7.run;
    {
      name = "table8";
      run = (fun () -> Table8.run ~requests:table8_requests ());
      split_requests = Some table8_requests;
    };
    simple "figure2" Figure2.run;
    simple "microcosts" Microcosts.run;
    simple "ablation" Ablation.run;
    simple "ablation-security" Ablation.security_only;
    simple "ablation-bound" Ablation.bound_instruction;
    simple "ablation-efence" Ablation.efence;
  ]

(* Wall-clock spent inside one parallel job, measured by the job itself.
   [run_all_timed] returns one entry per job in merge order — the
   "table8:request:*" entries are what the split buys: the largest of
   them replaces the monolithic table8 job as the suite's critical
   path. *)
type timing = { job : string; seconds : float }

(* What a first-round job produces: a finished report, or a warmed
   server the second round will fan requests out of. *)
type round_a =
  | A_report of Report.t
  | A_warm of Table8.warm

(* Regenerate every experiment across [jobs] domains; returns the
   reports in experiment order plus per-job wall-clock timings.

   Two rounds of top-level fan-out (a nested [Parallel.run_jobs] inside
   a worker would run serially): round A runs every non-split experiment
   and the split experiments' warm jobs; round B runs the per-request
   warm-started jobs. Split reports are assembled serially afterwards
   and spliced at their experiment's position.

   With [?trace_into], every job runs under its own ambient
   [Trace.sink] (the ambient sink is domain-local, and a sink must not
   be shared across running domains); after the barriers the per-job
   sinks are merged into [trace_into] in job order — round A then
   round B — so counters, histograms, and attribution sum exactly and
   the aggregate is deterministic at any [-j]. Only against a run
   traced through one sink for the whole pass does the event-ring
   interleaving (and the reload-interval samples that straddle job
   boundaries) differ. *)
let run_all_timed ?jobs ?trace_into (experiments : experiment list) :
    Report.t list * timing list =
  let traced = trace_into <> None in
  (* Wrap a job body: own sink (when tracing) + self-measured wall
     clock. *)
  let wrap label body () =
    let t0 = Unix.gettimeofday () in
    let sink = if traced then Some (Trace.create ()) else None in
    (match sink with Some _ as s -> Core.set_default_trace s | None -> ());
    Fun.protect
      ~finally:(fun () -> if traced then Core.set_default_trace None)
      (fun () ->
        let v = body () in
        (v, sink, { job = label; seconds = Unix.gettimeofday () -. t0 }))
  in
  (* Round A: non-split experiments keep their (experiment-index) slot;
     warm jobs are keyed by (experiment index, pair index). *)
  let ra_specs =
    List.concat
      (List.mapi
         (fun ei (ex : experiment) ->
           match ex.split_requests with
           | None ->
             [ ((ei, -1), wrap ex.name (fun () -> A_report (ex.run ()))) ]
           | Some _ ->
             List.mapi
               (fun pi ((_, _, label) as pair) ->
                 ( (ei, pi),
                   wrap
                     (Printf.sprintf "%s:warm:%s" ex.name label)
                     (fun () -> A_warm (Table8.warm pair)) ))
               (Table8.split_pairs ()))
         experiments)
  in
  let ra_results =
    Parallel.run_jobs ?jobs (Array.of_list (List.map snd ra_specs))
  in
  let ra =
    List.combine (List.map fst ra_specs) (Array.to_list ra_results)
  in
  let warm_of ei pi =
    match List.assoc (ei, pi) ra with
    | A_warm w, _, _ -> w
    | A_report _, _, _ | (exception Not_found) ->
      invalid_arg "Suite.run_all: warm job missing"
  in
  (* Round B: every request of every split experiment, in experiment /
     pair / request order. *)
  let rb_specs =
    List.concat
      (List.mapi
         (fun ei (ex : experiment) ->
           match ex.split_requests with
           | None -> []
           | Some requests ->
             List.concat
               (List.mapi
                  (fun pi (_ : Workloads.Netapps.app * Core.backend * string)
                  ->
                    let w = warm_of ei pi in
                    List.init requests (fun i ->
                        wrap
                          (Printf.sprintf "%s:request:%s#%d" ex.name
                             w.Table8.w_label i)
                          (fun () -> Table8.request w i)))
                  (Table8.split_pairs ())))
         experiments)
  in
  let rb_results = Parallel.run_jobs ?jobs (Array.of_list rb_specs) in
  (* Merge sinks in job order: round A, then round B. *)
  (match trace_into with
   | None -> ()
   | Some aggregate ->
     Array.iter
       (fun (_, sink, _) ->
         Option.iter (fun s -> Trace.merge_into ~into:aggregate s) sink)
       ra_results;
     Array.iter
       (fun (_, sink, _) ->
         Option.iter (fun s -> Trace.merge_into ~into:aggregate s) sink)
       rb_results);
  (* Assemble: walk experiments, consuming round-B request runs for the
     split ones. *)
  let rb_queue = ref (Array.to_list rb_results) in
  let take n =
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        match !rb_queue with
        | [] -> invalid_arg "Suite.run_all: request job missing"
        | (r, _, _) :: rest ->
          rb_queue := rest;
          go (n - 1) (r :: acc)
    in
    go n []
  in
  let reports =
    List.mapi
      (fun ei (ex : experiment) ->
        match ex.split_requests with
        | None -> (
          match List.assoc (ei, -1) ra with
          | A_report rep, _, _ -> rep
          | A_warm _, _, _ -> invalid_arg "Suite.run_all: report missing")
        | Some requests ->
          let pairs = Table8.split_pairs () in
          let warms = List.mapi (fun pi _ -> warm_of ei pi) pairs in
          let runs = List.map (fun _ -> take requests) pairs in
          Table8.assemble ~warms ~runs)
      experiments
  in
  let timings =
    List.map (fun (_, _, t) -> t) (Array.to_list ra_results)
    @ List.map (fun (_, _, t) -> t) (Array.to_list rb_results)
  in
  (reports, timings)

let run_all ?jobs ?trace_into experiments =
  fst (run_all_timed ?jobs ?trace_into experiments)
