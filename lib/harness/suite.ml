(* The canonical experiment list — every table and figure of the paper —
   and the parallel driver that regenerates them.

   One list shared by bench/main.exe, bin/experiments.exe, and the
   serial-vs-parallel oracle test, so "the full reproduction" means the
   same 14 jobs everywhere. Each experiment builds its own kernel,
   machine, and MMU, making the jobs independent and deterministic;
   [run_all] fans them out over [Parallel.run_jobs] and returns the
   reports in list order, so the printed output is byte-identical to a
   serial run at any [-j]. *)

let default_table8_requests = 25

let all ?(table8_requests = default_table8_requests) () :
    (string * (unit -> Report.t)) list =
  [
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("table4", Table4.run);
    ("table5", Table5.run);
    ("table6", Table6.run);
    ("table7", Table7.run);
    ("table8", fun () -> Table8.run ~requests:table8_requests ());
    ("figure2", Figure2.run);
    ("microcosts", Microcosts.run);
    ("ablation", Ablation.run);
    ("ablation-security", Ablation.security_only);
    ("ablation-bound", Ablation.bound_instruction);
    ("ablation-efence", Ablation.efence);
  ]

(* Regenerate every experiment across [jobs] domains. Results are
   collected by job index, so the returned reports are in experiment
   order regardless of completion order.

   With [?trace_into], every job runs under its own ambient
   [Trace.sink] (the ambient sink is domain-local, and a sink must not
   be shared across running domains); after the barrier the per-job
   sinks are merged into [trace_into] in job order, so counters,
   histograms, and attribution sum exactly and the aggregate is
   deterministic at any [-j] — only against a run traced through one
   sink for the whole pass does the event-ring interleaving (and the
   reload-interval samples that straddle experiment boundaries)
   differ. *)
let run_all ?jobs ?trace_into (experiments : (string * (unit -> Report.t)) list)
    : Report.t list =
  let task (_name, run) () =
    match trace_into with
    | None -> (run (), None)
    | Some _ ->
      let sink = Trace.create () in
      Core.set_default_trace (Some sink);
      Fun.protect
        ~finally:(fun () -> Core.set_default_trace None)
        (fun () -> (run (), Some sink))
  in
  let results =
    Parallel.run_jobs ?jobs (Array.of_list (List.map task experiments))
  in
  (match trace_into with
   | None -> ()
   | Some aggregate ->
     Array.iter
       (fun (_, sink) ->
         Option.iter (fun s -> Trace.merge_into ~into:aggregate s) sink)
       results);
  Array.to_list (Array.map fst results)
