(* The benchmark harness: regenerates every table and figure of the paper
   (printing the reproduced rows next to the paper's numbers), then runs
   one Bechamel micro-benchmark per experiment measuring the wall-clock
   cost of regenerating it on this machine.

     dune exec bench/main.exe                 # tables + bechamel
     dune exec bench/main.exe -- --no-bechamel  # reproduction output only
     dune exec bench/main.exe -- --trace        # + trace/profile JSON
     dune exec bench/main.exe -- -j 4           # reproduction across 4 domains
     dune exec bench/main.exe -- --engine=block # pick the CPU engine
     dune exec bench/main.exe -- --no-chain     # block engine without chaining
     dune exec bench/main.exe -- --quick --ab   # fast block-vs-predecode gate
     dune exec bench/main.exe -- --quick --ab-chain
                                              # chain-on vs chain-off gate
     dune exec bench/main.exe -- --compare BENCH_3.json
                                              # + ratios vs a prior record
     dune exec bench/main.exe -- --serve 2000 # warm-pool request server
                                              # throughput (pooled vs fresh)
     dune exec bench/main.exe -- --frontend   # compile-pipeline throughput:
                                              # lexer A/B, compiles/s, fleet
                                              # cold vs warm-pool legs
     dune exec bench/main.exe -- --matrix     # five-scheme protection matrix
                                              # (gcc/bcc/bcc-bound/cash/mpx/
                                              # cap; --quick for the CI slice)

   The reproduction pass runs its 14 experiments as independent jobs on
   a Domain pool (lib/parallel): -j N picks the worker count, defaulting
   to the CASH_JOBS environment variable or
   Domain.recommended_domain_count. Reports are collected by job index
   and printed in experiment order, so the table/figure output is
   byte-identical at any -j; simulated cycle counts are engine-, trace-
   and parallelism-independent.

   The pass also reports host throughput — simulated instructions
   retired per host second, summed across domains — and writes it to
   BENCH_<n>.json, claiming the first free index atomically (O_EXCL, so
   two concurrent runs can never take the same file) to keep the
   sequence a real time series, stamped with engine/version/jobs
   metadata. With --trace, every job runs under its own Trace.sink (the
   ambient sink is domain-local); the per-job sinks are merged in job
   order after the barrier and dumped to the matching TRACE_<n>.json:
   per-function cycle attribution plus segment/TLB/fault/LDT event
   counts, all summing exactly to a serial run's. *)

(* --quick scales the experiment that dominates wall time (Table 8's
   request count) down so a two-engine A/B gate fits in a CI minute;
   every table still regenerates, so engine regressions anywhere in the
   suite are caught, just on smaller workloads. *)
let experiments ~quick =
  if quick then Harness.Suite.all ~table8_requests:5 ()
  else Harness.Suite.all ()

let print_reports reports =
  print_endline
    "=====================================================================";
  print_endline
    " Cash reproduction: every table and figure of the DSN 2005 paper";
  print_endline
    "=====================================================================";
  List.iter Harness.Report.print reports

(* --- host throughput: simulated insns per host second ------------------- *)

type throughput = {
  wall_seconds : float;
  insns : int;
  insns_per_second : float;
}

(* Run [f] and measure the simulated instructions it retires per host
   wall-clock second (the interpreter's end-to-end speed, including
   compilation and harness overhead; with several domains the retire
   counts sum across workers while the wall clock stays one clock). *)
let measure_throughput f =
  let t0 = Unix.gettimeofday () in
  let i0 = Machine.Cpu.total_retired () in
  let result = f () in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let insns = Machine.Cpu.total_retired () - i0 in
  let insns_per_second =
    if wall_seconds > 0. then float_of_int insns /. wall_seconds else 0.
  in
  (result, { wall_seconds; insns; insns_per_second })

let print_throughput ~jobs tp =
  print_endline
    "\n== host throughput: full reproduction run (simulated insns / host second) ==";
  Printf.printf "jobs                  %12d\n" jobs;
  Printf.printf "wall-clock            %12.2f s\n" tp.wall_seconds;
  Printf.printf "insns executed        %12d\n" tp.insns;
  Printf.printf "insns per host second %12.0f\n" tp.insns_per_second

(* Machine-readable perf record, one file per run, for trajectory
   tracking across the stacked sequence. Never overwrites: each run
   claims the first free index with O_CREAT|O_EXCL — an atomic
   test-and-create, so two runs racing for BENCH_<n>.json cannot both
   win it (the old Sys.file_exists-then-open_out scan could hand the
   same index to both) — and BENCH_1.json, BENCH_2.json, ... is a real
   time series. Claiming BENCH_<n> also reserves TRACE_<n>. *)
let claim_output_channel () =
  let rec go n =
    if n > 10_000 then failwith "bench: no free BENCH_<n>.json index"
    else if Sys.file_exists (Printf.sprintf "TRACE_%d.json" n) then go (n + 1)
    else
      let path = Printf.sprintf "BENCH_%d.json" n in
      match
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
      with
      | fd -> (n, path, Unix.out_channel_of_descr fd)
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  go 1

(* The block/chain compilation shape of one reproduction pass, snapshotted
   as deltas of the process-wide counters around the measured run:
   "blocks_built" superblocks of "avg_block_len" instructions, welded into
   "chains_built" chains spanning "avg_chain_blocks" blocks /
   "avg_chain_insns" instructions each (all zero for the per-instruction
   engines, and for the block engine with --no-chain). *)
type shape = {
  chaining : bool;  (* chaining was enabled for this pass *)
  blocks_built : int;
  avg_block_len : float;
  chains_built : int;
  avg_chain_blocks : float;
  avg_chain_insns : float;
}

(* Schema 8: adds the five-scheme matrix record kind (bench = "matrix",
   written by --matrix, with per-scheme total cycles and overhead
   percentages over the workload slice) alongside schema 7's frontend
   records (bench = "frontend"), schema 6's serve records (bench =
   "serve"), and the reproduction records, which carry schema 5's
   fields unchanged ("chaining" and the chain shape on top of
   schema 4's engine + superblock shape). *)
let schema = 8

let write_json ~path ~oc ~engine ~traced ~quick ~jobs ~n_experiments
    ~shape tp =
  let json =
    Trace.Json.(
      Obj
        [
          ("schema", Int schema);
          ( "bench",
            Str (if quick then "quick-reproduction" else "full-reproduction")
          );
          ("engine", Str (Core.engine_name engine));
          ("traced", Bool traced);
          ("chaining", Bool shape.chaining);
          ("jobs", Int jobs);
          ("ocaml_version", Str Sys.ocaml_version);
          ("experiments", Int n_experiments);
          ("wall_seconds", Float tp.wall_seconds);
          ("insns_executed", Int tp.insns);
          ("insns_per_host_second", Float tp.insns_per_second);
          ("blocks_built", Int shape.blocks_built);
          ("avg_block_len", Float shape.avg_block_len);
          ("chains_built", Int shape.chains_built);
          ("avg_chain_blocks", Float shape.avg_chain_blocks);
          ("avg_chain_insns", Float shape.avg_chain_insns);
        ])
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Trace.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

let write_trace_json ~path sink =
  Core.write_file path (Trace.Json.to_string (Trace.to_json sink) ^ "\n");
  Printf.printf "wrote %s\n" path

(* Per-job wall-clock: the suite's critical path is its slowest job.
   With Table 8 split into warm-started per-request jobs, the largest
   request job — not a monolithic table8 — should top this list. *)
let print_job_timings (timings : Harness.Suite.timing list) =
  let sorted =
    List.sort
      (fun (a : Harness.Suite.timing) b -> compare b.seconds a.seconds)
      timings
  in
  print_endline "\n== slowest jobs (wall-clock) ==";
  List.iteri
    (fun i (t : Harness.Suite.timing) ->
      if i < 8 then
        Printf.printf "%-44s %8.2f s\n" t.Harness.Suite.job t.seconds)
    sorted;
  let max_with prefix =
    List.fold_left
      (fun acc (t : Harness.Suite.timing) ->
        if String.length t.job >= String.length prefix
           && String.sub t.job 0 (String.length prefix) = prefix
        then max acc t.seconds
        else acc)
      0. timings
  in
  let warm = max_with "table8:warm:" in
  let req = max_with "table8:request:" in
  if warm > 0. || req > 0. then
    Printf.printf "table8 split: max warm job %.2f s, max request job %.2f s\n"
      warm req

(* --- --compare: ratios against a prior BENCH_<n>.json ------------------- *)

(* [--compare BENCH_3.json] (or [--compare=...]): read a prior run's
   perf record back ([Trace.Json.parse]) and print this run's numbers
   as ratios against it. Drift warns, never fails: the shared host's
   baseline wanders (±15% observed across the PR sequence — see
   ROADMAP), so a cross-run ratio is advice for a human reading a
   trajectory, not a CI gate. Within-run comparisons (the --ab gate)
   stay the only fatal ones. *)
let compare_of_argv argv =
  let n = Array.length argv in
  let found = ref None in
  Array.iteri
    (fun i a ->
      if a = "--compare" && i + 1 < n then found := Some argv.(i + 1)
      else if String.length a > 10 && String.sub a 0 10 = "--compare=" then
        found := Some (String.sub a 10 (String.length a - 10)))
    argv;
  !found

let compare_against ~path ~engine ~quick ~jobs ~shape tp =
  match Trace.Json.parse (Core.read_file path) with
  | exception Sys_error msg ->
    Printf.eprintf "bench --compare: cannot read %s: %s\n" path msg
  | exception Trace.Json.Parse_error msg ->
    Printf.eprintf "bench --compare: %s: %s\n" path msg
  | old -> (
    let fld k conv = Option.bind (Trace.Json.member k old) conv in
    match fld "insns_per_host_second" Trace.Json.to_float_opt with
    | None ->
      Printf.eprintf
        "bench --compare: %s has no insns_per_host_second field\n" path
    | Some old_ips ->
      let old_str k = fld k Trace.Json.to_string_opt in
      let old_engine = Option.value ~default:"?" (old_str "engine") in
      let old_bench = Option.value ~default:"?" (old_str "bench") in
      let old_jobs = fld "jobs" Trace.Json.to_int_opt in
      Printf.printf "\n== compare vs %s (%s, engine %s, jobs %s) ==\n" path
        old_bench old_engine
        (match old_jobs with Some j -> string_of_int j | None -> "?");
      (match fld "wall_seconds" Trace.Json.to_float_opt with
       | Some old_wall when old_wall > 0. ->
         Printf.printf "wall-clock            %12.2f s   then %8.2f s  (%.2fx)\n"
           tp.wall_seconds old_wall (tp.wall_seconds /. old_wall)
       | _ -> ());
      (match fld "insns_executed" Trace.Json.to_int_opt with
       | Some old_insns when old_insns > 0 ->
         Printf.printf "insns executed        %12d   then %8d  (%.2fx)\n"
           tp.insns old_insns
           (float_of_int tp.insns /. float_of_int old_insns)
       | _ -> ());
      let ratio = tp.insns_per_second /. old_ips in
      Printf.printf "insns per host second %12.0f   then %8.0f  (%.2fx)\n"
        tp.insns_per_second old_ips ratio;
      (* The compilation shape (schema ≥4/5 fields): host-independent,
         so a delta here is a real behaviour change in the block or
         chain builders, not host noise. Older records simply lack the
         fields and print nothing. *)
      let shape_int name now =
        match fld name Trace.Json.to_int_opt with
        | Some old_v when old_v > 0 || now > 0 ->
          Printf.printf "%-21s %12d   then %8d  (%.2fx)\n" name now old_v
            (if old_v = 0 then Float.infinity
             else float_of_int now /. float_of_int old_v)
        | _ -> ()
      in
      let shape_float name now =
        match fld name Trace.Json.to_float_opt with
        | Some old_v when old_v > 0. || now > 0. ->
          Printf.printf "%-21s %12.1f   then %8.1f  (%.2fx)\n" name now
            old_v
            (if old_v = 0. then Float.infinity else now /. old_v)
        | _ -> ()
      in
      shape_int "blocks_built" shape.blocks_built;
      shape_float "avg_block_len" shape.avg_block_len;
      shape_int "chains_built" shape.chains_built;
      shape_float "avg_chain_blocks" shape.avg_chain_blocks;
      shape_float "avg_chain_insns" shape.avg_chain_insns;
      (match Option.bind (Trace.Json.member "chaining" old) (function
         | Trace.Json.Bool b -> Some b
         | _ -> None)
       with
       | Some old_chaining when old_chaining <> shape.chaining ->
         Printf.printf
           "note: chaining differs (%b vs %b); block-engine throughput is \
            not comparable\n"
           shape.chaining old_chaining
       | _ -> ());
      let this_bench =
        if quick then "quick-reproduction" else "full-reproduction"
      in
      if old_bench <> "?" && old_bench <> this_bench then
        Printf.printf
          "note: workload scale differs (%s vs %s); the ratio is not a \
           perf signal\n"
          this_bench old_bench;
      if old_engine <> "?" && old_engine <> Core.engine_name engine then
        Printf.printf
          "note: engine differs (%s vs %s); the ratio mixes engine and \
           host effects\n"
          (Core.engine_name engine) old_engine;
      (match old_jobs with
       | Some j when j <> jobs ->
         Printf.printf
           "note: job count differs (-j %d vs -j %d); throughput sums \
            across domains\n"
           jobs j
       | _ -> ());
      if ratio > 1.15 || ratio < 1. /. 1.15 then
        Printf.printf
          "warning: host throughput drifted %+.0f%% against %s — likely \
           host noise; re-measure the old commit on this host before \
           reading this as a regression\n"
          ((ratio -. 1.) *. 100.) path)

(* --- --serve: warm-pool request-server throughput ----------------------- *)

let serve_of_argv argv =
  let n = Array.length argv in
  let found = ref None in
  Array.iteri
    (fun i a ->
      if a = "--serve" && i + 1 < n then found := Some argv.(i + 1)
      else if String.length a > 8 && String.sub a 0 8 = "--serve=" then
        found := Some (String.sub a 8 (String.length a - 8)))
    argv;
  match !found with
  | None -> None
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> Some n
    | _ ->
      Printf.eprintf "bench --serve: expected a positive request count, got %S\n" s;
      exit 2)

let print_serve_summary ~label (s : Serve.Server.summary) =
  Printf.printf
    "%-22s %6d req  %8.3f s  %8.1f req/s  p50 %8.1f us  p90 %8.1f us  \
     p99 %8.1f us  (%d error(s))\n"
    label s.Serve.Server.requests s.Serve.Server.wall_seconds
    s.Serve.Server.req_per_s s.Serve.Server.p50_us s.Serve.Server.p90_us
    s.Serve.Server.p99_us s.Serve.Server.errors

let write_serve_json ~engine ~jobs ~requests ~(pooled : Serve.Server.summary)
    ~(fresh : Serve.Server.summary) ~alloc_pooled ~alloc_fresh =
  let n, path, oc = claim_output_channel () in
  let json =
    Trace.Json.(
      Obj
        [
          ("schema", Int schema);
          ("bench", Str "serve");
          ("engine", Str (Core.engine_name engine));
          ("jobs", Int jobs);
          ("ocaml_version", Str Sys.ocaml_version);
          ("requests", Int requests);
          ("errors", Int pooled.Serve.Server.errors);
          ("wall_seconds", Float pooled.Serve.Server.wall_seconds);
          ("req_per_s", Float pooled.Serve.Server.req_per_s);
          ("p50_us", Float pooled.Serve.Server.p50_us);
          ("p90_us", Float pooled.Serve.Server.p90_us);
          ("p99_us", Float pooled.Serve.Server.p99_us);
          ("fresh_requests", Int fresh.Serve.Server.requests);
          ("fresh_req_per_s", Float fresh.Serve.Server.req_per_s);
          ("fresh_p50_us", Float fresh.Serve.Server.p50_us);
          ("alloc_bytes_per_request", Float alloc_pooled);
          ("fresh_alloc_bytes_per_request", Float alloc_fresh);
        ])
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Trace.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path;
  ignore n

(* The --serve benchmark: the Table 8 request mix through the warm-pool
   server (restore into reused machines) against the fresh-restore
   baseline (build a machine per request) — same warm set, same engine,
   same worker count; the baseline leg runs a fifth of the requests
   since it exists only for the ratio. A second probe at one job
   measures allocation per replay request on both paths
   (Gc.allocated_bytes is per-domain, so the probe must not fan out). *)
let run_serve ~requests ~engine ~jobs =
  Core.set_default_engine engine;
  Printf.printf
    "== bench --serve: warm-pool request server (engine %s, -j %d) ==\n%!"
    (Core.engine_name engine) jobs;
  let warms = Serve.Server.table8_warms ~jobs () in
  let names = List.map (fun w -> w.Serve.Server.w_name) warms in
  let pooled_server = Serve.Server.create ~jobs ~warms ~engine () in
  let fresh_server =
    Serve.Server.create ~jobs ~warms ~engine ~pooled:false ()
  in
  let _, pooled =
    Serve.Server.run_lines pooled_server (Serve.Server.gen_mix ~names requests)
  in
  let fresh_n = max 1 (requests / 5) in
  let _, fresh =
    Serve.Server.run_lines fresh_server (Serve.Server.gen_mix ~names fresh_n)
  in
  print_serve_summary ~label:"pooled (restore_into)" pooled;
  print_serve_summary ~label:"fresh (restore)" fresh;
  if fresh.Serve.Server.req_per_s > 0. then
    Printf.printf "pooled/fresh speedup   %.2fx req/s, %.2fx p50 latency\n"
      (pooled.Serve.Server.req_per_s /. fresh.Serve.Server.req_per_s)
      (fresh.Serve.Server.p50_us /. max 1e-9 pooled.Serve.Server.p50_us);
  (* Allocation probe: replay-only, one job so every allocation lands on
     this domain's counter, one warm pool reused across all [probe_n]
     requests. *)
  let probe_n = 50 in
  let probe_lines =
    (* replay-only: drop the mix's every-4th compile-and-run *)
    List.filteri (fun i _ -> i mod 4 <> 3)
      (Serve.Server.gen_mix ~names:[ List.hd names ] probe_n)
  in
  let alloc_per_request pooled =
    let s1 = Serve.Server.create ~jobs:1 ~warms ~engine ~pooled () in
    (* one throwaway request so the worker pool exists before measuring *)
    ignore (Serve.Server.run_lines s1 [ List.hd probe_lines ]);
    let a0 = Gc.allocated_bytes () in
    ignore (Serve.Server.run_lines s1 probe_lines);
    (Gc.allocated_bytes () -. a0) /. float_of_int (List.length probe_lines)
  in
  let alloc_pooled = alloc_per_request true in
  let alloc_fresh = alloc_per_request false in
  Printf.printf
    "allocation per replay request: pooled %.0f bytes, fresh %.0f bytes\n"
    alloc_pooled alloc_fresh;
  if pooled.Serve.Server.errors > 0 || fresh.Serve.Server.errors > 0 then
    Printf.eprintf "bench --serve: warning: %d pooled / %d fresh error(s)\n"
      pooled.Serve.Server.errors fresh.Serve.Server.errors;
  write_serve_json ~engine ~jobs ~requests ~pooled ~fresh ~alloc_pooled
    ~alloc_fresh;
  if pooled.Serve.Server.errors > 0 || fresh.Serve.Server.errors > 0 then
    exit 1

(* --- --matrix: the five-scheme protection matrix ------------------------ *)

let matrix_of_argv argv = Array.exists (fun a -> a = "--matrix") argv

let write_matrix_json ~engine ~jobs ~quick ~workloads
    (totals : Harness.Matrix.totals list) =
  let n, path, oc = claim_output_channel () in
  let field name = String.map (fun c -> if c = '-' then '_' else c) name in
  let per_scheme =
    List.concat_map
      (fun (t : Harness.Matrix.totals) ->
        [
          (field t.Harness.Matrix.t_scheme ^ "_cycles",
           Trace.Json.Int t.Harness.Matrix.t_cycles);
          (field t.Harness.Matrix.t_scheme ^ "_overhead_pct",
           Trace.Json.Float t.Harness.Matrix.t_overhead_pct);
        ])
      totals
  in
  let json =
    Trace.Json.(
      Obj
        ([
           ("schema", Int schema);
           ("bench", Str "matrix");
           ("engine", Str (Core.engine_name engine));
           ("jobs", Int jobs);
           ("quick", Bool quick);
           ("ocaml_version", Str Sys.ocaml_version);
           ("workloads", Int workloads);
         ]
        @ per_scheme))
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Trace.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path;
  ignore n

(* The --matrix benchmark: one headline table comparing every protection
   scheme (gcc baseline, bcc, bcc-bound, cash, mpx, cap) over the
   micro/macro/netapps workload slice. The matrix module itself gates
   output agreement and the gcc cycle floor (raising on violation);
   simulated cycles are engine- and parallelism-independent, so the
   printed table is byte-identical at any -j and under any engine — the
   CI step pins that by diffing two runs. *)
let run_matrix ~quick ~engine ~jobs =
  Core.set_default_engine engine;
  Printf.printf
    "== bench --matrix: five-scheme protection matrix (engine %s, -j %d) \
     ==\n%!"
    (Core.engine_name engine) jobs;
  match Harness.Matrix.run ~quick ~jobs () with
  | exception Harness.Runner.Disagreement msg ->
    Printf.eprintf "bench --matrix: %s\n" msg;
    exit 1
  | report, totals ->
    Harness.Report.print report;
    print_endline "\n== per-scheme totals over the slice ==";
    List.iter
      (fun (t : Harness.Matrix.totals) ->
        Printf.printf "%-10s %12d cycles  %+7.1f%% vs gcc\n"
          t.Harness.Matrix.t_scheme t.Harness.Matrix.t_cycles
          t.Harness.Matrix.t_overhead_pct)
      totals;
    let workloads =
      List.length (Harness.Matrix.workloads ~quick)
    in
    write_matrix_json ~engine ~jobs ~quick ~workloads totals

(* --- --frontend: compile-pipeline throughput ---------------------------- *)

let frontend_of_argv argv = Array.exists (fun a -> a = "--frontend") argv

let write_frontend_json ~engine ~jobs ~corpus_programs ~corpus_bytes ~tokens
    ~ref_tokens_per_s ~tokens_per_s ~ref_minor_per_ktok ~minor_per_ktok
    ~compiles_per_s ~cold ~warm ~blocks_built_first ~blocks_bound_rerun =
  let n, path, oc = claim_output_channel () in
  let open Fuzz.Fleet in
  let json =
    Trace.Json.(
      Obj
        [
          ("schema", Int schema);
          ("bench", Str "frontend");
          ("engine", Str (Core.engine_name engine));
          ("jobs", Int jobs);
          ("ocaml_version", Str Sys.ocaml_version);
          ("corpus_programs", Int corpus_programs);
          ("corpus_bytes", Int corpus_bytes);
          ("tokens", Int tokens);
          ("ref_tokens_per_s", Float ref_tokens_per_s);
          ("tokens_per_s", Float tokens_per_s);
          ( "lexer_speedup",
            Float
              (if ref_tokens_per_s > 0. then tokens_per_s /. ref_tokens_per_s
               else 0.) );
          ("ref_minor_words_per_ktok", Float ref_minor_per_ktok);
          ("minor_words_per_ktok", Float minor_per_ktok);
          ("compiles_per_s", Float compiles_per_s);
          ("fleet_programs_per_s_cold", Float cold.check_programs_per_sec);
          ("fleet_programs_per_s_warm", Float warm.check_programs_per_sec);
          ("fleet_compile_share_cold", Float cold.compile_share);
          ("fleet_compile_share_warm", Float warm.compile_share);
          ("blocks_built_first", Int blocks_built_first);
          ("blocks_bound_rerun", Int blocks_bound_rerun);
        ])
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Trace.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path;
  ignore n

(* The --frontend benchmark: throughput of the compile pipeline itself,
   with its three in-process A/B gates.

   1. Lexer A/B over a corpus of workload kernels plus generated fuzz
      programs: the table-driven [Minic.Lexer.scan] against the
      list-building [Minic.Lexer_reference.tokenize]. Gate: token
      streams (token + line) byte-identical on every corpus program,
      and the new lexer not slower. A [Gc.minor_words] probe reports
      allocation per 1000 tokens on both paths.

   2. Whole-pipeline compiles per second ([Core.compile], uncached —
      lex + parse + typecheck + codegen).

   3. The fuzz fleet run twice over the same seeds: the first leg
      starts from a cold process (empty physical-memory recycling
      pools, cold allocator), the second replays with every domain's
      pools warm. Gate: a cached program re-run on the block engine
      builds zero new superblocks (it binds the shared closures
      instead) and its output is byte-identical across all three
      engines. *)
let run_frontend ~quick ~engine ~jobs =
  Core.set_default_engine engine;
  Printf.printf
    "== bench --frontend: compile-pipeline throughput (engine %s, -j %d) ==\n%!"
    (Core.engine_name engine) jobs;
  let gen_src seed oob = Fuzz.Gen.render (Fuzz.Gen.generate ~seed ~oob) in
  let gen_n = if quick then 40 else 200 in
  let corpus =
    [ Workloads.Micro.matmul (); Workloads.Micro.gaussian ();
      Workloads.Micro.fft2d (); Workloads.Micro.edge_detect ();
      Workloads.Micro.svd (); Workloads.Micro.volrender () ]
    @ List.init gen_n (fun i -> gen_src i (i mod 3 = 2))
  in
  let corpus_programs = List.length corpus in
  let corpus_bytes =
    List.fold_left (fun acc s -> acc + String.length s) 0 corpus
  in
  (* Gate 1a: the equivalence oracle, over the whole corpus. *)
  List.iteri
    (fun i s ->
      if Minic.Lexer.tokenize s <> Minic.Lexer_reference.tokenize s then begin
        Printf.eprintf
          "bench --frontend: token stream differs from the reference lexer \
           on corpus program %d\n"
          i;
        exit 1
      end)
    corpus;
  let reps = if quick then 10 else 40 in
  let time_tokens f =
    let t0 = Unix.gettimeofday () in
    let tokens = ref 0 in
    for _ = 1 to reps do
      List.iter (fun s -> tokens := !tokens + f s) corpus
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (!tokens, if dt > 0. then float_of_int !tokens /. dt else 0.)
  in
  let count_new s = Minic.Lexer.count (Minic.Lexer.scan s) in
  let count_ref s = List.length (Minic.Lexer_reference.tokenize s) in
  (* Interleave-free warmup, then measure reference first so the new
     lexer cannot ride a warmer cache. *)
  ignore (List.fold_left (fun acc s -> acc + count_ref s + count_new s) 0 corpus);
  let tokens, ref_tokens_per_s = time_tokens count_ref in
  let _, tokens_per_s = time_tokens count_new in
  let minor_per_ktok f =
    let m0 = Gc.minor_words () in
    let toks = List.fold_left (fun acc s -> acc + f s) 0 corpus in
    (Gc.minor_words () -. m0) /. float_of_int (max 1 toks) *. 1000.
  in
  let ref_minor_per_ktok = minor_per_ktok count_ref in
  let minor_per_ktok = minor_per_ktok count_new in
  Printf.printf
    "corpus                 %6d programs, %d bytes, %d tokens/pass\n"
    corpus_programs corpus_bytes (tokens / reps);
  Printf.printf "reference lexer        %12.0f tokens/s  (%8.0f minor words / \
                 1k tokens)\n"
    ref_tokens_per_s ref_minor_per_ktok;
  Printf.printf "table-driven lexer     %12.0f tokens/s  (%8.0f minor words / \
                 1k tokens)  %.2fx\n"
    tokens_per_s minor_per_ktok
    (if ref_tokens_per_s > 0. then tokens_per_s /. ref_tokens_per_s else 0.);
  (* Gate 1b: the rewrite must not be slower than what it replaced. *)
  if tokens_per_s < ref_tokens_per_s then begin
    prerr_endline "bench --frontend: table-driven lexer slower than reference";
    exit 1
  end;
  (* Whole-pipeline compile throughput, uncached on purpose. *)
  let creps = if quick then 1 else 3 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to creps do
    List.iter (fun s -> ignore (Core.compile Core.cash s)) corpus
  done;
  let cdt = Unix.gettimeofday () -. t0 in
  let compiles_per_s =
    if cdt > 0. then float_of_int (creps * corpus_programs) /. cdt else 0.
  in
  Printf.printf "compile (cash)         %12.1f programs/s\n" compiles_per_s;
  (* The fleet, twice over the same seeds. The fleet streams distinct
     programs, so it deliberately bypasses the program cache (see
     Fuzz.Check); what the second leg measures is the steady state of
     the per-domain physical-memory recycling pools and the warmed
     allocator, i.e. the configuration a long overnight sweep runs in. *)
  let fleet_n = if quick then 60 else 150 in
  let fleet_cfg =
    { Fuzz.Fleet.default with
      count = fleet_n; jobs = Some jobs; dump_dir = None; shrink = false }
  in
  let cold = Fuzz.Fleet.run fleet_cfg in
  let warm = Fuzz.Fleet.run fleet_cfg in
  let open Fuzz.Fleet in
  let fleet_line label (s : Fuzz.Fleet.stats) =
    Printf.printf
      "fleet %-16s %12.1f programs/s  (compile %4.1f%% of check phase)\n"
      label s.check_programs_per_sec (s.compile_share *. 100.)
  in
  fleet_line "(cold process)" cold;
  fleet_line "(warm pools)" warm;
  if cold.failures <> [] || warm.failures <> [] then begin
    Printf.eprintf "bench --frontend: %d cold / %d warm fleet failure(s)\n"
      (List.length cold.failures) (List.length warm.failures);
    exit 1
  end;
  (* Gate 3: shared superblocks. A fresh machine over an
     already-compiled program must bind the cached closures, build
     nothing new, and agree with every engine byte for byte. *)
  let probe_src = gen_src 424242 false in
  let compiled = Core.compile_cached Core.cash probe_src in
  let out e = (Core.run ~engine:e compiled).Core.output in
  let b0 = Machine.Cpu.blocks_built () in
  let out_blk1 = out Machine.Cpu.Block in
  let blocks_built_first = Machine.Cpu.blocks_built () - b0 in
  let b1 = Machine.Cpu.blocks_built () in
  let d1 = Machine.Cpu.blocks_bound () in
  let out_blk2 = out Machine.Cpu.Block in
  let blocks_built_rerun = Machine.Cpu.blocks_built () - b1 in
  let blocks_bound_rerun = Machine.Cpu.blocks_bound () - d1 in
  Printf.printf
    "shared superblocks     %6d built on first run, %d built / %d bound on \
     re-run\n"
    blocks_built_first blocks_built_rerun blocks_bound_rerun;
  if blocks_built_rerun <> 0 || blocks_bound_rerun = 0 then begin
    prerr_endline
      "bench --frontend: re-run rebuilt superblocks instead of binding the \
       shared cache";
    exit 1
  end;
  if out_blk1 <> out_blk2
     || out_blk1 <> out Machine.Cpu.Predecoded
     || out_blk1 <> out Machine.Cpu.Reference
  then begin
    prerr_endline "bench --frontend: probe output differs across engines";
    exit 1
  end;
  write_frontend_json ~engine ~jobs ~corpus_programs ~corpus_bytes
    ~tokens:(tokens / reps) ~ref_tokens_per_s ~tokens_per_s
    ~ref_minor_per_ktok ~minor_per_ktok ~compiles_per_s ~cold ~warm
    ~blocks_built_first ~blocks_bound_rerun

(* --- bechamel: one Test.make per table ---------------------------------- *)

open Bechamel
open Toolkit

let tests experiments =
  Test.make_grouped ~name:"experiments" ~fmt:"%s/%s"
    (List.map
       (fun (ex : Harness.Suite.experiment) ->
         Test.make ~name:ex.Harness.Suite.name
           (Staged.stage (fun () -> ignore (ex.Harness.Suite.run ()))))
       experiments)

let run_bechamel experiments =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (tests experiments) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "\n== bechamel: wall-clock per experiment regeneration ==";
  Printf.printf "%-28s %16s\n" "experiment" "time per run";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        let ms = est /. 1e6 in
        Printf.printf "%-28s %13.1f ms\n" name ms
      | _ -> Printf.printf "%-28s %16s\n" name "n/a")
    results

(* One measured reproduction pass under [engine] (with block chaining on
   or off): run every experiment over the domain pool, report
   throughput, claim and write the BENCH/TRACE json pair. Returns the
   reports (for printing/comparison), the throughput record, and the
   compilation shape (for the --ab/--ab-chain gates and --compare). *)
let run_reproduction ~experiments ~engine ~chain ~jobs ~traced ~quick
    ~print_tables =
  Core.set_default_engine engine;
  Core.set_chaining chain;
  let aggregate =
    if traced then begin
      (* Every sink created from here on — this aggregate and each
         worker's per-job sink inside Harness.Suite — carries the
         shipped checker plugins; worker states fold back into the
         aggregate through Trace.merge_into. *)
      Trace.set_auto_plugins Checkers.all;
      Some (Trace.create ())
    end
    else None
  in
  let blocks0 = Machine.Cpu.blocks_built () in
  let binsns0 = Machine.Cpu.block_insns_compiled () in
  let chains0 = Machine.Cpu.chains_built () in
  let cblocks0 = Machine.Cpu.chain_blocks_linked () in
  let cinsns0 = Machine.Cpu.chain_insns_linked () in
  let (reports, timings), tp =
    measure_throughput (fun () ->
        Harness.Suite.run_all_timed ~jobs ?trace_into:aggregate experiments)
  in
  let blocks_built = Machine.Cpu.blocks_built () - blocks0 in
  let avg_block_len =
    if blocks_built = 0 then 0.
    else
      float_of_int (Machine.Cpu.block_insns_compiled () - binsns0)
      /. float_of_int blocks_built
  in
  let chains_built = Machine.Cpu.chains_built () - chains0 in
  let per_chain counter c0 =
    if chains_built = 0 then 0.
    else float_of_int (counter - c0) /. float_of_int chains_built
  in
  let shape =
    {
      chaining = chain && engine = Machine.Cpu.Block;
      blocks_built;
      avg_block_len;
      chains_built;
      avg_chain_blocks = per_chain (Machine.Cpu.chain_blocks_linked ()) cblocks0;
      avg_chain_insns = per_chain (Machine.Cpu.chain_insns_linked ()) cinsns0;
    }
  in
  if print_tables then print_reports reports;
  Printf.printf "\n== engine %s%s ==\n" (Core.engine_name engine)
    (if engine = Machine.Cpu.Block then
       if chain then " (chaining)" else " (no chaining)"
     else "");
  print_throughput ~jobs tp;
  print_job_timings timings;
  if blocks_built > 0 then
    Printf.printf "blocks built          %12d (avg %.1f insns)\n"
      blocks_built avg_block_len;
  if chains_built > 0 then
    Printf.printf "chains built          %12d (avg %.1f blocks, %.1f insns)\n"
      chains_built shape.avg_chain_blocks shape.avg_chain_insns;
  let n, path, oc = claim_output_channel () in
  write_json ~path ~oc ~engine ~traced ~quick ~jobs
    ~n_experiments:(List.length experiments) ~shape tp;
  (match aggregate with
   | Some s ->
     Trace.set_auto_plugins [];
     Trace.finish_plugins s;
     write_trace_json ~path:(Printf.sprintf "TRACE_%d.json" n) s;
     print_endline "\n== trace: top functions by attributed cycles ==";
     List.iteri
       (fun i (sym, insns, cycles) ->
         if i < 15 then
           Printf.printf "%-28s %14d cycles %12d insns\n" sym cycles insns)
       (Trace.attributions s);
     print_endline "\n== trace: event counters ==";
     List.iter
       (fun (k, v) -> Printf.printf "%-28s %14d\n" k v)
       (Trace.counters s);
     let violations = Checkers.shipped_violations s in
     print_endline "\n== trace: checker plugins ==";
     List.iter
       (fun name ->
         let n =
           List.length (List.filter (fun (c, _) -> c = name) violations)
         in
         Printf.printf "%-28s %s\n" name
           (if n = 0 then "ok" else Printf.sprintf "%d violation(s)" n))
       (Trace.plugin_names s);
     if violations <> [] then begin
       List.iter
         (fun (c, m) -> Printf.eprintf "plugin violation: %s: %s\n" c m)
         violations;
       exit 1
     end
   | None -> ());
  (reports, tp, shape)

let () =
  let no_bechamel =
    Array.exists (fun a -> a = "--no-bechamel") Sys.argv
  in
  let traced = Array.exists (fun a -> a = "--trace") Sys.argv in
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let ab = Array.exists (fun a -> a = "--ab") Sys.argv in
  let ab_chain = Array.exists (fun a -> a = "--ab-chain") Sys.argv in
  let chain = not (Array.exists (fun a -> a = "--no-chain") Sys.argv) in
  let engine =
    Array.fold_left
      (fun acc a ->
        if String.length a >= 9 && String.sub a 0 9 = "--engine=" then
          let name = String.sub a 9 (String.length a - 9) in
          match Core.engine_of_string name with
          | Some e -> e
          | None ->
            Printf.eprintf
              "bench: unknown engine %S (expected block|predecode|reference)\n"
              name;
            exit 2
        else acc)
      (Core.default_engine ()) Sys.argv
  in
  let jobs =
    match Parallel.jobs_of_argv Sys.argv with
    | Some j -> j
    | None -> Parallel.default_jobs ()
  in
  (match serve_of_argv Sys.argv with
   | Some requests ->
     run_serve ~requests ~engine ~jobs;
     exit 0
   | None -> ());
  if matrix_of_argv Sys.argv then begin
    run_matrix ~quick ~engine ~jobs;
    exit 0
  end;
  if frontend_of_argv Sys.argv then begin
    run_frontend ~quick ~engine ~jobs;
    exit 0
  end;
  let experiments = experiments ~quick in
  let render reports =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Harness.Report.pp) reports)
  in
  if ab then begin
    (* A/B gate: the same reproduction under the per-instruction
       pre-decoded engine and then the superblock engine. Tables must
       match byte for byte (simulated semantics are engine-independent)
       and the block engine must not be slower — a direct regression
       tripwire for the block dispatch and fast-path layers. *)
    let reports_pre, tp_pre, _ =
      run_reproduction ~experiments ~engine:Machine.Cpu.Predecoded ~chain
        ~jobs ~traced ~quick ~print_tables:false
    in
    let reports_blk, tp_blk, _ =
      run_reproduction ~experiments ~engine:Machine.Cpu.Block ~chain ~jobs
        ~traced ~quick ~print_tables:false
    in
    if render reports_pre <> render reports_blk then begin
      prerr_endline "bench --ab: block-engine tables differ from predecode";
      exit 1
    end;
    Printf.printf
      "\n== A/B gate: block %.0f insns/s vs predecode %.0f insns/s (%.2fx) ==\n"
      tp_blk.insns_per_second tp_pre.insns_per_second
      (tp_blk.insns_per_second /. tp_pre.insns_per_second);
    if tp_blk.insns_per_second < tp_pre.insns_per_second then begin
      prerr_endline "bench --ab: block engine slower than predecode";
      exit 1
    end
  end
  else if ab_chain then begin
    (* Chain A/B gate: the superblock engine with chaining off and then
       on. Chaining is a pure host-throughput cache, so the tables must
       match byte for byte, chains must actually have been built on the
       on leg, and the chained run must not be slower — the tripwire
       for the chain builder and the chained dispatch loop. *)
    let reports_off, tp_off, _ =
      run_reproduction ~experiments ~engine:Machine.Cpu.Block ~chain:false
        ~jobs ~traced ~quick ~print_tables:false
    in
    let reports_on, tp_on, shape_on =
      run_reproduction ~experiments ~engine:Machine.Cpu.Block ~chain:true
        ~jobs ~traced ~quick ~print_tables:false
    in
    if render reports_off <> render reports_on then begin
      prerr_endline "bench --ab-chain: chained tables differ from unchained";
      exit 1
    end;
    Printf.printf
      "\n== chain A/B gate: chained %.0f insns/s vs unchained %.0f insns/s \
       (%.2fx, %d chains) ==\n"
      tp_on.insns_per_second tp_off.insns_per_second
      (tp_on.insns_per_second /. tp_off.insns_per_second)
      shape_on.chains_built;
    if shape_on.chains_built = 0 then begin
      prerr_endline "bench --ab-chain: no chains were built on the on leg";
      exit 1
    end;
    if tp_on.insns_per_second < tp_off.insns_per_second then begin
      prerr_endline "bench --ab-chain: chained run slower than unchained";
      exit 1
    end
  end
  else begin
    let _reports, tp, shape =
      run_reproduction ~experiments ~engine ~chain ~jobs ~traced ~quick
        ~print_tables:true
    in
    (match compare_of_argv Sys.argv with
     | Some path -> compare_against ~path ~engine ~quick ~jobs ~shape tp
     | None -> ());
    if not no_bechamel then run_bechamel experiments
  end
