(* The benchmark harness: regenerates every table and figure of the paper
   (printing the reproduced rows next to the paper's numbers), then runs
   one Bechamel micro-benchmark per experiment measuring the wall-clock
   cost of regenerating it on this machine.

     dune exec bench/main.exe                 # tables + bechamel
     dune exec bench/main.exe -- --no-bechamel  # reproduction output only
     dune exec bench/main.exe -- --trace        # + trace/profile JSON
     dune exec bench/main.exe -- -j 4           # reproduction across 4 domains

   The reproduction pass runs its 14 experiments as independent jobs on
   a Domain pool (lib/parallel): -j N picks the worker count, defaulting
   to the CASH_JOBS environment variable or
   Domain.recommended_domain_count. Reports are collected by job index
   and printed in experiment order, so the table/figure output is
   byte-identical at any -j; simulated cycle counts are engine-, trace-
   and parallelism-independent.

   The pass also reports host throughput — simulated instructions
   retired per host second, summed across domains — and writes it to
   BENCH_<n>.json, claiming the first free index atomically (O_EXCL, so
   two concurrent runs can never take the same file) to keep the
   sequence a real time series, stamped with engine/version/jobs
   metadata. With --trace, every job runs under its own Trace.sink (the
   ambient sink is domain-local); the per-job sinks are merged in job
   order after the barrier and dumped to the matching TRACE_<n>.json:
   per-function cycle attribution plus segment/TLB/fault/LDT event
   counts, all summing exactly to a serial run's. *)

let experiments = Harness.Suite.all ()

let print_reports reports =
  print_endline
    "=====================================================================";
  print_endline
    " Cash reproduction: every table and figure of the DSN 2005 paper";
  print_endline
    "=====================================================================";
  List.iter Harness.Report.print reports

(* --- host throughput: simulated insns per host second ------------------- *)

type throughput = {
  wall_seconds : float;
  insns : int;
  insns_per_second : float;
}

(* Run [f] and measure the simulated instructions it retires per host
   wall-clock second (the interpreter's end-to-end speed, including
   compilation and harness overhead; with several domains the retire
   counts sum across workers while the wall clock stays one clock). *)
let measure_throughput f =
  let t0 = Unix.gettimeofday () in
  let i0 = Machine.Cpu.total_retired () in
  let result = f () in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let insns = Machine.Cpu.total_retired () - i0 in
  let insns_per_second =
    if wall_seconds > 0. then float_of_int insns /. wall_seconds else 0.
  in
  (result, { wall_seconds; insns; insns_per_second })

let print_throughput ~jobs tp =
  print_endline
    "\n== host throughput: full reproduction run (simulated insns / host second) ==";
  Printf.printf "jobs                  %12d\n" jobs;
  Printf.printf "wall-clock            %12.2f s\n" tp.wall_seconds;
  Printf.printf "insns executed        %12d\n" tp.insns;
  Printf.printf "insns per host second %12.0f\n" tp.insns_per_second

(* Machine-readable perf record, one file per run, for trajectory
   tracking across the stacked sequence. Never overwrites: each run
   claims the first free index with O_CREAT|O_EXCL — an atomic
   test-and-create, so two runs racing for BENCH_<n>.json cannot both
   win it (the old Sys.file_exists-then-open_out scan could hand the
   same index to both) — and BENCH_1.json, BENCH_2.json, ... is a real
   time series. Claiming BENCH_<n> also reserves TRACE_<n>. *)
let claim_output_channel () =
  let rec go n =
    if n > 10_000 then failwith "bench: no free BENCH_<n>.json index"
    else if Sys.file_exists (Printf.sprintf "TRACE_%d.json" n) then go (n + 1)
    else
      let path = Printf.sprintf "BENCH_%d.json" n in
      match
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
      with
      | fd -> (n, path, Unix.out_channel_of_descr fd)
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (n + 1)
  in
  go 1

let write_json ~path ~oc ~traced ~jobs tp =
  let json =
    Trace.Json.(
      Obj
        [
          ("schema", Int 3);
          ("bench", Str "full-reproduction");
          ("engine", Str "predecoded");
          ("traced", Bool traced);
          ("jobs", Int jobs);
          ("ocaml_version", Str Sys.ocaml_version);
          ("experiments", Int (List.length experiments));
          ("wall_seconds", Float tp.wall_seconds);
          ("insns_executed", Int tp.insns);
          ("insns_per_host_second", Float tp.insns_per_second);
        ])
  in
  output_string oc (Trace.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let write_trace_json ~path sink =
  let oc = open_out path in
  output_string oc (Trace.Json.to_string (Trace.to_json sink));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- bechamel: one Test.make per table ---------------------------------- *)

open Bechamel
open Toolkit

let tests =
  Test.make_grouped ~name:"experiments" ~fmt:"%s/%s"
    (List.map
       (fun (name, run) ->
         Test.make ~name (Staged.stage (fun () -> ignore (run ()))))
       experiments)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "\n== bechamel: wall-clock per experiment regeneration ==";
  Printf.printf "%-28s %16s\n" "experiment" "time per run";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        let ms = est /. 1e6 in
        Printf.printf "%-28s %13.1f ms\n" name ms
      | _ -> Printf.printf "%-28s %16s\n" name "n/a")
    results

let () =
  let no_bechamel =
    Array.exists (fun a -> a = "--no-bechamel") Sys.argv
  in
  let traced = Array.exists (fun a -> a = "--trace") Sys.argv in
  let jobs =
    match Parallel.jobs_of_argv Sys.argv with
    | Some j -> j
    | None -> Parallel.default_jobs ()
  in
  let aggregate = if traced then Some (Trace.create ()) else None in
  let reports, tp =
    measure_throughput (fun () ->
        Harness.Suite.run_all ~jobs ?trace_into:aggregate experiments)
  in
  print_reports reports;
  print_throughput ~jobs tp;
  let n, path, oc = claim_output_channel () in
  write_json ~path ~oc ~traced ~jobs tp;
  (match aggregate with
   | Some s ->
     write_trace_json ~path:(Printf.sprintf "TRACE_%d.json" n) s;
     print_endline "\n== trace: top functions by attributed cycles ==";
     List.iteri
       (fun i (sym, insns, cycles) ->
         if i < 15 then
           Printf.printf "%-28s %14d cycles %12d insns\n" sym cycles insns)
       (Trace.attributions s);
     print_endline "\n== trace: event counters ==";
     List.iter
       (fun (k, v) -> Printf.printf "%-28s %14d\n" k v)
       (Trace.counters s)
   | None -> ());
  if not no_bechamel then run_bechamel ()
