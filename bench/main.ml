(* The benchmark harness: regenerates every table and figure of the paper
   (printing the reproduced rows next to the paper's numbers), then runs
   one Bechamel micro-benchmark per experiment measuring the wall-clock
   cost of regenerating it on this machine.

     dune exec bench/main.exe                 # tables + bechamel
     dune exec bench/main.exe -- --no-bechamel  # reproduction output only
     dune exec bench/main.exe -- --trace        # + trace/profile JSON

   The reproduction pass also reports host throughput — simulated
   instructions retired per host second — and writes it to the first
   free BENCH_<n>.json (never overwriting a prior run, so the sequence
   is a real time series), stamped with engine/version metadata. With
   --trace, a Trace.sink is attached to every run of the reproduction
   pass and dumped to the matching TRACE_<n>.json: per-function cycle
   attribution plus segment/TLB/fault/LDT event counts. The
   table/figure output itself is unaffected either way: simulated cycle
   counts are engine- and tracing-independent. *)

let experiments : (string * (unit -> Harness.Report.t)) list =
  [
    ("table1", Harness.Table1.run);
    ("table2", Harness.Table2.run);
    ("table3", Harness.Table3.run);
    ("table4", Harness.Table4.run);
    ("table5", Harness.Table5.run);
    ("table6", Harness.Table6.run);
    ("table7", Harness.Table7.run);
    ("table8", fun () -> Harness.Table8.run ~requests:25 ());
    ("figure2", Harness.Figure2.run);
    ("microcosts", Harness.Microcosts.run);
    ("ablation", Harness.Ablation.run);
    ("ablation-security", Harness.Ablation.security_only);
    ("ablation-bound", Harness.Ablation.bound_instruction);
    ("ablation-efence", Harness.Ablation.efence);
  ]

let print_reproduction () =
  print_endline
    "=====================================================================";
  print_endline
    " Cash reproduction: every table and figure of the DSN 2005 paper";
  print_endline
    "=====================================================================";
  List.iter
    (fun (_, run) -> Harness.Report.print (run ()))
    experiments

(* --- host throughput: simulated insns per host second ------------------- *)

type throughput = {
  wall_seconds : float;
  insns : int;
  insns_per_second : float;
}

(* Run [f] and measure the simulated instructions it retires per host
   wall-clock second (the interpreter's end-to-end speed, including
   compilation and harness overhead). *)
let measure_throughput f =
  let t0 = Unix.gettimeofday () in
  let i0 = Machine.Cpu.total_retired () in
  f ();
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let insns = Machine.Cpu.total_retired () - i0 in
  let insns_per_second =
    if wall_seconds > 0. then float_of_int insns /. wall_seconds else 0.
  in
  { wall_seconds; insns; insns_per_second }

let print_throughput tp =
  print_endline
    "\n== host throughput: full reproduction run (simulated insns / host second) ==";
  Printf.printf "wall-clock            %12.2f s\n" tp.wall_seconds;
  Printf.printf "insns executed        %12d\n" tp.insns;
  Printf.printf "insns per host second %12.0f\n" tp.insns_per_second

(* Machine-readable perf record, one file per run, for trajectory
   tracking across the stacked sequence. Never overwrites: each run
   takes the first free index, so BENCH_1.json, BENCH_2.json, ... is a
   real time series. *)
let next_free_index () =
  let rec go n =
    if n > 10_000 then failwith "bench: no free BENCH_<n>.json index"
    else if
      Sys.file_exists (Printf.sprintf "BENCH_%d.json" n)
      || Sys.file_exists (Printf.sprintf "TRACE_%d.json" n)
    then go (n + 1)
    else n
  in
  go 1

let write_json ~path ~traced tp =
  let json =
    Trace.Json.(
      Obj
        [
          ("schema", Int 2);
          ("bench", Str "full-reproduction");
          ("engine", Str "predecoded");
          ("traced", Bool traced);
          ("ocaml_version", Str Sys.ocaml_version);
          ("experiments", Int (List.length experiments));
          ("wall_seconds", Float tp.wall_seconds);
          ("insns_executed", Int tp.insns);
          ("insns_per_host_second", Float tp.insns_per_second);
        ])
  in
  let oc = open_out path in
  output_string oc (Trace.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let write_trace_json ~path sink =
  let oc = open_out path in
  output_string oc (Trace.Json.to_string (Trace.to_json sink));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- bechamel: one Test.make per table ---------------------------------- *)

open Bechamel
open Toolkit

let tests =
  Test.make_grouped ~name:"experiments" ~fmt:"%s/%s"
    (List.map
       (fun (name, run) ->
         Test.make ~name (Staged.stage (fun () -> ignore (run ()))))
       experiments)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "\n== bechamel: wall-clock per experiment regeneration ==";
  Printf.printf "%-28s %16s\n" "experiment" "time per run";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        let ms = est /. 1e6 in
        Printf.printf "%-28s %13.1f ms\n" name ms
      | _ -> Printf.printf "%-28s %16s\n" name "n/a")
    results

let () =
  let no_bechamel =
    Array.exists (fun a -> a = "--no-bechamel") Sys.argv
  in
  let traced = Array.exists (fun a -> a = "--trace") Sys.argv in
  let sink =
    if traced then begin
      let s = Trace.create () in
      Core.set_default_trace (Some s);
      Some s
    end
    else None
  in
  let tp = measure_throughput print_reproduction in
  Core.set_default_trace None;
  print_throughput tp;
  let n = next_free_index () in
  write_json ~path:(Printf.sprintf "BENCH_%d.json" n) ~traced tp;
  (match sink with
   | Some s ->
     write_trace_json ~path:(Printf.sprintf "TRACE_%d.json" n) s;
     print_endline "\n== trace: top functions by attributed cycles ==";
     List.iteri
       (fun i (sym, insns, cycles) ->
         if i < 15 then
           Printf.printf "%-28s %14d cycles %12d insns\n" sym cycles insns)
       (Trace.attributions s);
     print_endline "\n== trace: event counters ==";
     List.iter
       (fun (k, v) -> Printf.printf "%-28s %14d\n" k v)
       (Trace.counters s)
   | None -> ());
  if not no_bechamel then run_bechamel ()
