(* cashfuzz: the property-based differential fleet, as a standalone tool.

     dune exec bin/cashfuzz.exe -- --count 1000            # quick sweep
     dune exec bin/cashfuzz.exe -- --count 100000 -j 8     # overnight fleet
     dune exec bin/cashfuzz.exe -- --engines all --plugins # full matrix,
                                                             hardware checker
                                                             plugins watching
                                                             every cash run
     dune exec bin/cashfuzz.exe -- --force-fail 3 --dump d # CI drill: force
                                                             seed 3 to fail,
                                                             shrink it, dump
                                                             artifacts under d

   Each seed generates one mini-C program (every [--oob-every]'th with
   an injected overrun), runs it through gcc/bcc/cash, and checks the
   differential property; a failing seed is greedily shrunk to a
   minimal reproducer and both the original and the shrunk program are
   dumped with crash snapshots replayable via `cashc --replay`. Exit
   status is 1 when any seed failed, 0 otherwise. *)

open Cmdliner

let count =
  Arg.(value & opt int 1000 &
       info [ "n"; "count" ] ~docv:"N" ~doc:"Number of programs to generate.")

let first_seed =
  Arg.(value & opt int 0 &
       info [ "first-seed" ] ~docv:"SEED"
         ~doc:"Seed of the first program; program $(i,i) uses seed \
               $(i,SEED+i). The generator is deterministic per seed.")

let oob_every =
  Arg.(value & opt int 3 &
       info [ "oob-every" ] ~docv:"K"
         ~doc:"Inject an out-of-bounds access into every $(i,K)-th program \
               (0 disables injection entirely).")

let jobs =
  Arg.(value & opt (some int) None &
       info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains. Defaults to $(b,CASH_JOBS) or the \
               recommended domain count.")

let engines =
  Arg.(value & opt (enum [ ("fast", Fuzz.Fleet.Fast); ("all", Fuzz.Fleet.All) ])
         Fuzz.Fleet.Fast &
       info [ "engines" ]
         ~doc:"$(b,fast) runs each program once per backend on the chained \
               superblock engine; $(b,all) runs the full differential \
               matrix (predecode, block with and without chaining, and the \
               reference oracle every 7th seed).")

let dump_dir =
  Arg.(value & opt string "fuzz-failures" &
       info [ "dump" ] ~docv:"DIR"
         ~doc:"Directory for crash artifacts (created recursively); each \
               failing seed dumps source, machine snapshot, and a replay \
               command, for both the original and the shrunk reproducer.")

let no_dump =
  Arg.(value & flag &
       info [ "no-dump" ] ~doc:"Do not write crash artifacts.")

let no_shrink =
  Arg.(value & flag &
       info [ "no-shrink" ] ~doc:"Do not shrink failing programs.")

let plugins =
  Arg.(value & flag &
       info [ "plugins" ]
         ~doc:"Attach the shipped checker plugins (bounds precision, stack \
               smash, LDT reuse, fault consistency) to every cash run; a \
               plugin violation fails the seed like any divergence.")

let force_fail =
  Arg.(value & opt (some int) None &
       info [ "force-fail" ] ~docv:"SEED"
         ~doc:"Force this seed to fail — exercises the shrink-and-dump \
               path on demand (the CI drill).")

let no_chain =
  Arg.(value & flag &
       info [ "no-chain" ]
         ~doc:"Disable block chaining process-wide. Purely a \
               host-throughput knob; simulated behaviour is identical.")

let run count first_seed oob_every jobs engines dump_dir no_dump no_shrink
    plugins force_fail no_chain =
  if no_chain then Core.set_chaining false;
  let cfg =
    {
      Fuzz.Fleet.count;
      first_seed;
      oob_every;
      engines;
      jobs;
      dump_dir = (if no_dump then None else Some dump_dir);
      force_fail;
      shrink = not no_shrink;
      plugins;
    }
  in
  let stats = Fuzz.Fleet.run cfg in
  let open Fuzz.Fleet in
  Printf.printf
    "cashfuzz: %d programs, seeds %d..%d, engines %s%s\n\
    \  oob injected:  %d\n\
    \  known misses:  %d  (straight-line overruns cash skips by policy)\n\
    \  failures:      %d\n\
    \  wall:          %.1f s  (%.1f programs/s, check + shrink/dump)\n\
    \  check phase:   %.1f s  (%.1f programs/s, summed across workers)\n\
    \  compile:       %.1f s  (%.0f%% of the check phase: lex + parse + \
     typecheck + codegen)\n"
    stats.ran first_seed
    (first_seed + count - 1)
    (match engines with Fast -> "fast" | All -> "all")
    (if plugins then ", plugins on" else "")
    stats.oob_injected stats.known_misses
    (List.length stats.failures)
    stats.wall_seconds stats.programs_per_sec stats.check_seconds
    stats.check_programs_per_sec stats.compile_seconds
    (stats.compile_share *. 100.);
  List.iter
    (fun r ->
      Printf.printf "\nFAIL seed %d (%s, %s): %s\n" r.r_seed r.r_what
        r.r_backend r.r_message;
      List.iter (fun p -> Printf.printf "  artifact: %s\n" p) r.r_artifacts;
      match r.r_min_src with
      | Some src ->
        Printf.printf "  shrunk to %d lines:\n"
          (List.length (String.split_on_char '\n' (String.trim src)));
        String.split_on_char '\n' (String.trim src)
        |> List.iter (fun l -> Printf.printf "    %s\n" l)
      | None -> ())
    stats.failures;
  if stats.failures = [] then 0 else 1

let cmd =
  let doc = "property-based differential fuzzing of the Cash compilers" in
  Cmd.v (Cmd.info "cashfuzz" ~doc)
    Term.(const run $ count $ first_seed $ oob_every $ jobs $ engines
          $ dump_dir $ no_dump $ no_shrink $ plugins $ force_fail $ no_chain)

let () = exit (Cmd.eval' cmd)
