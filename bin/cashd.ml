(* cashd: the warm-pool request server.

     dune exec bin/cashd.exe                        # serve stdin -> stdout
     dune exec bin/cashd.exe -- -j 4 --batch 128
     dune exec bin/cashd.exe -- --socket /tmp/cashd.sock --max-conns 1
     dune exec bin/cashd.exe -- --gen-requests 200  # print a request mix
                                                      and exit (feed it back
                                                      through a second cashd)

   Requests are newline-framed JSON (see lib/serve/protocol.mli):

     {"op": "replay", "snapshot": "qpopper/cash3"}
     {"op": "compile-and-run", "backend": "cash", "source": "..."}

   One response line per request, in request order, then a summary line
   with latency percentiles and req/s. The replay targets are the
   twelve Table 8 app/backend pairs, warmed to their accept loop at
   startup (skip with --no-warm when serving only compile-and-run). *)

open Cmdliner

let engine_conv =
  Arg.enum
    [ ("block", Machine.Cpu.Block); ("predecode", Machine.Cpu.Predecoded);
      ("predecoded", Machine.Cpu.Predecoded);
      ("reference", Machine.Cpu.Reference) ]

let engine =
  Arg.(value & opt engine_conv Machine.Cpu.Block &
       info [ "engine" ]
         ~doc:"Default CPU engine for requests that don't name one: \
               block, predecode, reference. Results are \
               engine-independent.")

let no_chain =
  Arg.(value & flag &
       info [ "no-chain" ]
         ~doc:"Disable superblock chaining (host-throughput knob; \
               simulated results are identical).")

let jobs =
  Arg.(value & opt (some int) None &
       info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains (default: CASH_JOBS or the host's core \
               count).")

let batch =
  Arg.(value & opt int 256 &
       info [ "batch" ] ~docv:"N"
         ~doc:"Requests dispatched per parallel batch. Also the machine \
               reuse horizon above one job: worker pools are \
               domain-local and domains live one batch.")

let pool_capacity =
  Arg.(value & opt int 1 &
       info [ "pool-capacity" ] ~docv:"N"
         ~doc:"Warm machines each worker pool builds before the pool \
               policy applies.")

let pool_policy =
  Arg.(value & opt (enum [ ("grow", Serve.Pool.Grow); ("block", Serve.Pool.Block) ])
         Serve.Pool.Grow &
       info [ "pool-policy" ]
         ~doc:"At capacity with every machine busy: $(b,grow) builds \
               past capacity, $(b,block) waits for a release.")

let no_pool =
  Arg.(value & flag &
       info [ "no-pool" ]
         ~doc:"Serve every request through a fresh machine build + \
               restore instead of the warm pool (the A/B baseline; \
               responses are byte-identical, only slower).")

let no_warm =
  Arg.(value & flag &
       info [ "no-warm" ]
         ~doc:"Skip warming the Table 8 replay set at startup; replay \
               requests then fail with an unknown-snapshot error.")

let socket =
  Arg.(value & opt (some string) None &
       info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on a Unix-domain socket instead of serving \
               stdin/stdout. Each connection is an independent request \
               stream with its own summary line.")

let max_conns =
  Arg.(value & opt int 0 &
       info [ "max-conns" ] ~docv:"N"
         ~doc:"With --socket: exit after serving N connections \
               (0 = serve forever).")

let gen_requests =
  Arg.(value & opt (some int) None &
       info [ "gen-requests" ] ~docv:"N"
         ~doc:"Print N request lines of the Table 8 mix (3 replays : 1 \
               compile-and-run) to stdout and exit, without compiling \
               or warming anything.")

let serve_socket server path max_conns =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "cashd: listening on %s\n%!" path;
  let served = ref 0 in
  (try
     while max_conns = 0 || !served < max_conns do
       let conn, _ = Unix.accept sock in
       let ic = Unix.in_channel_of_descr conn in
       let oc = Unix.out_channel_of_descr conn in
       let s =
         try Serve.Server.serve server ic oc
         with e ->
           Printf.eprintf "cashd: connection failed: %s\n%!"
             (Printexc.to_string e);
           { Serve.Server.requests = 0; errors = 0; wall_seconds = 0.;
             req_per_s = 0.; p50_us = 0.; p90_us = 0.; p99_us = 0.;
             compile_hits = 0; compile_misses = 0 }
       in
       (try close_out oc with Sys_error _ -> ());
       incr served;
       Printf.eprintf "cashd: connection %d done: %d request(s), %.1f req/s\n%!"
         !served s.Serve.Server.requests s.Serve.Server.req_per_s
     done
   with e ->
     Unix.close sock;
     raise e);
  Unix.close sock;
  (try Unix.unlink path with Unix.Unix_error _ -> ())

let run engine no_chain jobs batch pool_capacity pool_policy no_pool no_warm
    socket max_conns gen_requests =
  match gen_requests with
  | Some n ->
    List.iter print_endline
      (Serve.Server.gen_mix ~names:(Serve.Server.table8_names ()) n);
    0
  | None ->
    if no_chain then Core.set_chaining false;
    Core.set_default_engine engine;
    let warms = if no_warm then [] else Serve.Server.table8_warms ?jobs () in
    let server =
      Serve.Server.create ?jobs ~batch ~pool_capacity ~policy:pool_policy
        ~pooled:(not no_pool) ~engine ~warms ()
    in
    (match socket with
     | Some path -> serve_socket server path max_conns
     | None ->
       let s = Serve.Server.serve server stdin stdout in
       Printf.eprintf "cashd: %d request(s), %d error(s), %.1f req/s, \
                       p50 %.1fus p90 %.1fus p99 %.1fus, \
                       compile cache %d hit(s) / %d miss(es)\n%!"
         s.Serve.Server.requests s.Serve.Server.errors
         s.Serve.Server.req_per_s s.Serve.Server.p50_us s.Serve.Server.p90_us
         s.Serve.Server.p99_us s.Serve.Server.compile_hits
         s.Serve.Server.compile_misses);
    0

let cmd =
  let doc = "warm-pool request server for the simulated segmented x86" in
  Cmd.v (Cmd.info "cashd" ~doc)
    Term.(const run $ engine $ no_chain $ jobs $ batch $ pool_capacity
          $ pool_policy $ no_pool $ no_warm $ socket $ max_conns
          $ gen_requests)

let () = exit (Cmd.eval' cmd)
