(* Run the paper's experiments and print the reproduced tables.

     dune exec bin/experiments.exe            # everything
     dune exec bin/experiments.exe -- table1 figure2
     dune exec bin/experiments.exe -- --requests 100 table8
     dune exec bin/experiments.exe -- -j 4    # fan out over 4 domains

   Each experiment builds its own simulated machine, so the selected
   experiments run as independent jobs on a Domain pool (lib/parallel).
   Reports are collected by job index and printed in selection order:
   the output is byte-identical at any -j. *)

let experiments : (string * (requests:int -> Harness.Report.t list)) list =
  [
    ("table1", fun ~requests:_ -> [ Harness.Table1.run () ]);
    ("table2", fun ~requests:_ -> [ Harness.Table2.run () ]);
    ("table3", fun ~requests:_ -> [ Harness.Table3.run () ]);
    ("table4", fun ~requests:_ -> [ Harness.Table4.run () ]);
    ("table5", fun ~requests:_ -> [ Harness.Table5.run () ]);
    ("table6", fun ~requests:_ -> [ Harness.Table6.run () ]);
    ("table7", fun ~requests:_ -> [ Harness.Table7.run () ]);
    (* The warm-started snapshot split: byte-identical to the serial
       [Table8.run] but each server inits once instead of once per
       request. Inside this fan-out it runs its jobs serially (nested
       pools do not nest); selected alone it still wins by skipping
       the per-request init replay. *)
    ("table8", fun ~requests -> [ Harness.Table8.run_split ~requests () ]);
    ("figure2", fun ~requests:_ -> [ Harness.Figure2.run () ]);
    ("microcosts", fun ~requests:_ -> [ Harness.Microcosts.run () ]);
    ( "ablation",
      fun ~requests:_ ->
        [ Harness.Ablation.run (); Harness.Ablation.sw_check_dynamics () ] );
    ("security", fun ~requests:_ -> [ Harness.Ablation.security_only () ]);
    ("bound", fun ~requests:_ -> [ Harness.Ablation.bound_instruction () ]);
    ("efence", fun ~requests:_ -> [ Harness.Ablation.efence () ]);
  ]

let names = List.map fst experiments

open Cmdliner

let selected =
  let doc =
    Printf.sprintf "Experiments to run (default: all). One of: %s."
      (String.concat ", " names)
  in
  Arg.(value & pos_all (enum (List.map (fun n -> (n, n)) names)) [] &
       info [] ~docv:"EXPERIMENT" ~doc)

let requests =
  let doc = "Requests per server for table8." in
  Arg.(value & opt int Harness.Table8.default_requests &
       info [ "requests" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the experiment fan-out (default: $(b,CASH_JOBS) or \
     the recommended domain count). Output is byte-identical at any value."
  in
  Arg.(value & opt int (Parallel.default_jobs ()) &
       info [ "j"; "jobs" ] ~docv:"N" ~doc)

let engine =
  let doc =
    "CPU interpreter for every run: block, predecode, or reference. \
     Output is byte-identical across engines."
  in
  Arg.(value & opt (enum [ ("block", Machine.Cpu.Block);
                           ("predecode", Machine.Cpu.Predecoded);
                           ("predecoded", Machine.Cpu.Predecoded);
                           ("reference", Machine.Cpu.Reference) ])
         (Core.default_engine ())
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

let no_chain =
  let doc =
    "Disable block chaining under $(b,--engine=block). A host-throughput \
     knob only: simulated results are byte-identical either way."
  in
  Arg.(value & flag & info [ "no-chain" ] ~doc)

let run selected requests jobs engine no_chain =
  (* Ambient (process-wide atomics): set before the domain fan-out so
     every worker's [Core.run] calls pick them up. *)
  Core.set_default_engine engine;
  if no_chain then Core.set_chaining false;
  let to_run = if selected = [] then names else selected in
  let tasks =
    Array.of_list
      (List.map
         (fun name () -> (List.assoc name experiments) ~requests)
         to_run)
  in
  List.iter (List.iter Harness.Report.print)
    (Array.to_list (Parallel.run_jobs ~jobs tasks))

let cmd =
  let doc = "reproduce the tables and figures of the Cash paper (DSN 2005)" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(const run $ selected $ requests $ jobs $ engine $ no_chain)

let () = exit (Cmd.eval cmd)
