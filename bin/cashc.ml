(* cashc: compile and run a mini-C file on the simulated machine.

     dune exec bin/cashc.exe -- prog.c                 # Cash, 3 registers
     dune exec bin/cashc.exe -- --compiler gcc prog.c
     dune exec bin/cashc.exe -- --compiler bcc --stats prog.c
     dune exec bin/cashc.exe -- --dump-asm prog.c      # print generated code
     dune exec bin/cashc.exe -- --profile prog.c       # traced run: flat
                                                         per-function cycle
                                                         profile + hardware
                                                         event counters on
                                                         stderr
     dune exec bin/cashc.exe -- --check prog.c         # traced run with the
                                                         shipped checker
                                                         plugins attached;
                                                         exit 5 on a plugin
                                                         violation
     dune exec bin/cashc.exe -- --replay s.snap prog.c # restore a machine
                                                         checkpoint of prog.c
                                                         (e.g. a differential
                                                         crash dump) and
                                                         resume from it
*)

open Cmdliner

let backend_conv =
  let all =
    [ ("gcc", Core.gcc); ("bcc", Core.bcc); ("cash", Core.cash);
      (* "cash3" = "cash": [Core.backend_name] prints the register count,
         and crash-dump replay lines quote that name verbatim. *)
      ("cash2", Core.cash_n 2); ("cash3", Core.cash); ("cash4", Core.cash_n 4);
      ("mpx", Core.mpx); ("cap", Core.cap) ]
  in
  Arg.enum all

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"mini-C source file")

let backend =
  Arg.(value & opt backend_conv Core.cash &
       info [ "c"; "compiler" ]
         ~doc:"Compiler: gcc, bcc, cash, cash2, cash4, mpx, cap.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print static and dynamic statistics.")

let dump_asm =
  Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the generated code and exit.")

let profile =
  Arg.(value & flag &
       info [ "profile" ]
         ~doc:"Run with a trace sink attached and print a flat per-function \
               cycle profile plus hardware event counters to stderr. \
               Simulated cycles are identical with and without this flag.")

let check =
  Arg.(value & flag &
       info [ "check" ]
         ~doc:"Run with the shipped checker plugins (bounds precision, \
               stack smash, LDT slot reuse, fault/counter consistency) \
               attached to the trace sink, print their report to stderr, \
               and exit 5 if any plugin recorded a violation on an \
               otherwise clean run. Composes with $(b,--profile); tracing \
               never changes simulated behaviour.")

let engine_conv =
  Arg.enum
    [ ("block", Machine.Cpu.Block); ("predecode", Machine.Cpu.Predecoded);
      ("predecoded", Machine.Cpu.Predecoded);
      ("reference", Machine.Cpu.Reference) ]

let engine =
  Arg.(value & opt engine_conv Machine.Cpu.Block &
       info [ "engine" ]
         ~doc:"CPU interpreter: block (superblock dispatch, the default \
               here), predecode, or reference. Simulated cycles and output \
               are engine-independent.")

let no_chain =
  Arg.(value & flag &
       info [ "no-chain" ]
         ~doc:"Disable block chaining (meaningful only with \
               $(b,--engine=block)): hot blocks dispatch one at a time \
               instead of being chained past the dispatch loop. Purely a \
               host-throughput knob — simulated cycles, output, and \
               faults are identical either way.")

let replay =
  Arg.(value & opt (some file) None &
       info [ "replay" ] ~docv:"SNAPSHOT"
         ~doc:"Restore a lib/snapshot checkpoint taken of $(i,FILE)'s \
               compiled program (for example a differential-fleet crash \
               dump) and resume execution from it instead of starting \
               fresh. The compiler must match the one that took the \
               snapshot; the engine need not. A snapshot of an \
               already-terminated machine replays its final status and \
               output.")

let read_file = Core.read_file

let print_profile sink =
  Printf.eprintf "-- flat profile (cycles by function) --\n";
  Printf.eprintf "%-24s %12s %12s\n" "function" "cycles" "insns";
  List.iter
    (fun (sym, insns, cycles) ->
      Printf.eprintf "%-24s %12d %12d\n" sym cycles insns)
    (Trace.attributions sink);
  Printf.eprintf "-- hardware events --\n";
  List.iter
    (fun (k, v) -> Printf.eprintf "%-24s %12d\n" k v)
    (Trace.counters sink);
  let violations = Trace.violations sink in
  if violations <> [] then begin
    Printf.eprintf "-- checker violations --\n";
    List.iter
      (fun (checker, msg) -> Printf.eprintf "%s: %s\n" checker msg)
      violations
  end

(* The plugin report: one line per attached plugin, then every recorded
   violation. Returns [true] when the run is clean. *)
let print_check sink =
  Trace.finish_plugins sink;
  let violations = Checkers.shipped_violations sink in
  Printf.eprintf "-- checker plugins --\n";
  List.iter
    (fun name ->
      let n =
        List.length (List.filter (fun (c, _) -> c = name) violations)
      in
      Printf.eprintf "%-24s %s\n" name
        (if n = 0 then "ok" else Printf.sprintf "%d violation(s)" n))
    (Trace.plugin_names sink);
  List.iter
    (fun (checker, msg) -> Printf.eprintf "%s: %s\n" checker msg)
    violations;
  violations = []

let run file backend stats dump_asm profile check engine no_chain replay =
  let source = read_file file in
  if no_chain then Core.set_chaining false;
  match Core.compile backend source with
  | exception Minic.Lexer.Lex_error (m, l) ->
    Printf.eprintf "%s:%d: lexical error: %s\n" file l m; 1
  | exception Minic.Parser.Parse_error (m, l) ->
    Printf.eprintf "%s:%d: parse error: %s\n" file l m; 1
  | exception Minic.Typecheck.Type_error m ->
    Printf.eprintf "%s: type error: %s\n" file m; 1
  | compiled ->
    if dump_asm then begin
      Fmt.pr "%a@." Machine.Program.pp compiled.Compilers.Codegen.program;
      0
    end
    else begin
      let trace =
        if profile || check then Some (Trace.create ()) else None
      in
      (match trace with
       | Some sink when check -> Checkers.attach_shipped sink
       | _ -> ());
      match
        match replay with
        | None -> Ok (Core.run ~engine ?trace compiled)
        | Some snap -> (
          let bytes = Bytes.of_string (read_file snap) in
          match Core.restore ~engine ?trace compiled bytes with
          | state -> Ok (Core.finish state)
          | exception Snapshot.Error e -> Error (snap, e))
      with
      | Error (snap, e) ->
        Printf.eprintf "%s: cannot replay: %s\n" snap
          (Snapshot.error_to_string e);
        4
      | Ok r ->
      print_string r.Core.output;
      let plugins_clean =
        match trace with
        | Some s ->
          if profile then print_profile s;
          if check then print_check s else true
        | None -> true
      in
      let exit_code =
        match r.Core.status with
        | Core.Finished -> if plugins_clean then 0 else 5
        | Core.Bound_violation m ->
          Printf.eprintf "bound violation: %s\n" m; 2
        | Core.Crashed m ->
          Printf.eprintf "fault: %s\n" m; 3
      in
      if stats then begin
        let i = Core.static_info compiled in
        Printf.eprintf
          "cycles: %d\ninstructions: %d\ncode bytes: %d\ndata bytes: %d\n\
           hw checks (static): %d\nsw checks (static): %d\n\
           bcc checks (static): %d\nsw checks executed: %d\n"
          r.Core.cycles r.Core.insns i.Core.code_bytes i.Core.data_bytes
          i.Core.hw_checks i.Core.sw_checks i.Core.bcc_checks
          (Core.stat_sum r ~prefix:"__stat_swc_");
        match r.Core.runtime with
        | Some rt ->
          let c = Cashrt.Runtime.cache rt in
          Printf.eprintf
            "segment allocations: %d\nsegment cache hits/misses: %d/%d\n\
             peak live segments: %d\n"
            (Cashrt.Runtime.stats rt).Cashrt.Runtime.seg_allocs
            (Cashrt.Seg_cache.hits c) (Cashrt.Seg_cache.misses c)
            (Cashrt.Segment_pool.peak_live (Cashrt.Runtime.pool rt))
        | None -> ()
      end;
      exit_code
    end

let cmd =
  let doc = "compile and run mini-C on the simulated segmented x86" in
  Cmd.v (Cmd.info "cashc" ~doc)
    Term.(const run $ file $ backend $ stats $ dump_asm $ profile $ check
          $ engine $ no_chain $ replay)

let () = exit (Cmd.eval' cmd)
